// Client is the Go client for the reranking service API.
//
// A Client is configured with functional options and optionally pinned to
// one upstream namespace:
//
//	c := service.NewClientWith(baseURL,
//		service.WithUpstream("autos"),
//		service.WithClientID("crawler-7"),
//		service.WithTimeout(2*time.Minute))
//
// Without WithUpstream the client speaks the legacy un-namespaced routes,
// which the server resolves to its default namespace.

package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client talks to a rerankd instance.
type Client struct {
	baseURL  string
	http     *http.Client
	timeout  time.Duration
	upstream string
	// ClientID, when set, is sent as the X-Client-ID header so the
	// server's per-client budget windows attribute cost to this client.
	// Prefer WithClientID; the field stays exported for back-compat.
	ClientID string
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient uses hc for requests (nil is ignored). Combine with
// WithTimeout to bound requests without building an *http.Client yourself.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		if hc != nil {
			c.http = hc
		}
	}
}

// WithTimeout bounds every request (default 60s). Applied to a copy of the
// configured HTTP client, so a shared client passed via WithHTTPClient is
// not mutated.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithClientID attributes this client's upstream cost to id via the
// X-Client-ID header (the server's per-client budget key).
func WithClientID(id string) ClientOption {
	return func(c *Client) { c.ClientID = id }
}

// WithUpstream pins the client to one upstream namespace: requests use the
// /v1/upstreams/{ns}/... routes instead of the legacy un-namespaced ones.
func WithUpstream(namespace string) ClientOption {
	return func(c *Client) { c.upstream = namespace }
}

// NewClientWith builds a client for the service at baseURL.
func NewClientWith(baseURL string, opts ...ClientOption) *Client {
	c := &Client{baseURL: baseURL}
	for _, opt := range opts {
		opt(c)
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: 60 * time.Second}
	}
	if c.timeout > 0 {
		hc := *c.http
		hc.Timeout = c.timeout
		c.http = &hc
	}
	return c
}

// NewClient builds a client for the service at baseURL.
//
// Deprecated: use NewClientWith with WithHTTPClient / WithTimeout options.
func NewClient(baseURL string, hc *http.Client) *Client {
	return NewClientWith(baseURL, WithHTTPClient(hc))
}

// Upstream returns the namespace the client is pinned to ("" = default via
// the legacy routes).
func (c *Client) Upstream() string { return c.upstream }

// apiPath builds the request path for suffix ("/rerank", "/schema", ...),
// namespace-scoped when the client is pinned to an upstream.
func (c *Client) apiPath(suffix string) string {
	if c.upstream == "" {
		return "/v1" + suffix
	}
	return "/v1/upstreams/" + url.PathEscape(c.upstream) + suffix
}

// StatusError is a non-200 service answer: the parsed error envelope
// ({"error":{code,message,retryAfterSec}}). Shed requests (429/503) carry
// RetryAfter, the server's requested backoff.
type StatusError struct {
	Status int
	// Code is the envelope's machine-readable error code (see ErrCode*).
	Code       string
	Msg        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	switch {
	case e.Code != "" && e.Msg != "":
		return fmt.Sprintf("status %d (%s): %s", e.Status, e.Code, e.Msg)
	case e.Msg != "":
		return fmt.Sprintf("status %d: %s", e.Status, e.Msg)
	case e.Code != "":
		return fmt.Sprintf("status %d (%s)", e.Status, e.Code)
	default:
		return fmt.Sprintf("status %d", e.Status)
	}
}

// statusError drains a non-200 response into a *StatusError.
func statusError(resp *http.Response) *StatusError {
	var env errorEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	se := &StatusError{Status: resp.StatusCode}
	if env.Error != nil {
		se.Code, se.Msg = env.Error.Code, env.Error.Message
		se.RetryAfter = time.Duration(env.Error.RetryAfterSec) * time.Second
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		se.RetryAfter = time.Duration(secs) * time.Second
	}
	return se
}

// streamStatusError lifts a final stream event's in-band error envelope
// into the same typed error a non-200 response produces.
func streamStatusError(ev *StreamEvent) *StatusError {
	status := ev.Status
	if status == 0 {
		status = http.StatusBadGateway
	}
	se := &StatusError{Status: status}
	if ev.Error != nil {
		se.Code, se.Msg = ev.Error.Code, ev.Error.Message
		se.RetryAfter = time.Duration(ev.Error.RetryAfterSec) * time.Second
	}
	return se
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.ClientID != "" {
		req.Header.Set(ClientIDHeader, c.ClientID)
	}
	return c.http.Do(req)
}

func (c *Client) post(path string, v any) (*http.Response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

// getJSON fetches path and decodes a 200 answer into out.
func (c *Client) getJSON(path string, what string, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return fmt.Errorf("%s request: %w", what, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s request: %w", what, statusError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode %s: %w", what, err)
	}
	return nil
}

// Rerank submits one reranking request (against the pinned namespace when
// WithUpstream was used).
func (c *Client) Rerank(req RerankRequest) (*RerankResponse, error) {
	resp, err := c.post(c.apiPath("/rerank"), req)
	if err != nil {
		return nil, fmt.Errorf("rerank request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rerank request: %w", statusError(resp))
	}
	var out RerankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode rerank response: %w", err)
	}
	if out.Epoch == 0 {
		// Pre-redesign servers omit the body field; the header (if present)
		// still carries the namespace's knowledge epoch.
		if e, err := strconv.ParseInt(resp.Header.Get(KnowledgeEpochHeader), 10, 64); err == nil {
			out.Epoch = e
		}
	}
	return &out, nil
}

// RerankBatch submits a batch of requests in one round trip. The returned
// response carries per-item outcomes in request order; an error is only
// returned when the batch itself was rejected (bad request, 429, 503).
func (c *Client) RerankBatch(req BatchRequest) (*BatchResponse, error) {
	resp, err := c.post(c.apiPath("/rerank/batch"), req)
	if err != nil {
		return nil, fmt.Errorf("batch request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("batch request: %w", statusError(resp))
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode batch response: %w", err)
	}
	return &out, nil
}

// RerankStream submits a streaming request and calls fn for every NDJSON
// event as it arrives, final Done event included. fn returning false stops
// reading and disconnects (the server releases the session at the next
// tuple boundary). The final event is also returned for convenience.
func (c *Client) RerankStream(req RerankRequest, fn func(StreamEvent) bool) (*StreamEvent, error) {
	resp, err := c.post(c.apiPath("/rerank/stream"), req)
	if err != nil {
		return nil, fmt.Errorf("stream request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stream request: %w", statusError(resp))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("decode stream event: %w", err)
		}
		cont := fn == nil || fn(ev)
		if ev.Done {
			// The final event's error outranks fn's stop signal — a
			// failed stream must never return a nil error.
			if ev.Error != nil {
				// In-band failure: surface it with the same typed
				// status a one-shot request would have returned.
				return &ev, fmt.Errorf("stream failed: %w", streamStatusError(&ev))
			}
			return &ev, nil
		}
		if !cont {
			return &ev, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read stream: %w", err)
	}
	return nil, fmt.Errorf("stream ended without a final event")
}

// Stats fetches the service-wide statistics (all namespaces, with the
// per-upstream breakdown in Upstreams).
func (c *Client) Stats() (*Stats, error) {
	var out Stats
	if err := c.getJSON("/v1/stats", "stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Schema fetches the upstream search schema of the pinned namespace (the
// default namespace without WithUpstream). Unknown namespaces yield a
// *StatusError with Status 404.
func (c *Client) Schema() (*SchemaResponse, error) {
	var out SchemaResponse
	if err := c.getJSON(c.apiPath("/schema"), "schema", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Upstreams lists the registered upstream namespaces with their full
// descriptors: knowledge epoch, probe-guard health, last sentinel pass, and
// stale-region count alongside the registration fields.
func (c *Client) Upstreams() (*UpstreamsResponse, error) {
	var out UpstreamsResponse
	if err := c.getJSON("/v1/upstreams", "upstreams", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UpstreamNames lists only the registered namespace names (the
// ?format=names shape — cheaper than Upstreams when the descriptors are
// not needed).
func (c *Client) UpstreamNames() (*UpstreamNamesResponse, error) {
	var out UpstreamNamesResponse
	if err := c.getJSON("/v1/upstreams?format=names", "upstreams", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Upstream fetches one registered upstream's descriptor.
func (c *Client) UpstreamInfo(name string) (*UpstreamInfo, error) {
	var out UpstreamInfo
	if err := c.getJSON("/v1/upstreams/"+url.PathEscape(name), "upstream", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Revalidate triggers an immediate sentinel pass against one namespace's
// upstream and reports the resulting epoch state.
func (c *Client) Revalidate(name string) (*RevalidateResponse, error) {
	resp, err := c.post("/v1/upstreams/"+url.PathEscape(name)+"/revalidate", struct{}{})
	if err != nil {
		return nil, fmt.Errorf("revalidate request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("revalidate request: %w", statusError(resp))
	}
	var out RevalidateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode revalidate response: %w", err)
	}
	return &out, nil
}

// RegisterUpstream registers a new upstream namespace on the server (POST
// /v1/upstreams): the server dials cfg.URL and builds a fresh engine for it.
func (c *Client) RegisterUpstream(cfg UpstreamConfig) (*UpstreamInfo, error) {
	resp, err := c.post("/v1/upstreams", cfg)
	if err != nil {
		return nil, fmt.Errorf("register upstream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("register upstream: %w", statusError(resp))
	}
	var out UpstreamInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode upstream info: %w", err)
	}
	return &out, nil
}

// DeregisterUpstream removes an upstream namespace from the server.
func (c *Client) DeregisterUpstream(name string) error {
	req, err := http.NewRequest(http.MethodDelete, c.baseURL+"/v1/upstreams/"+url.PathEscape(name), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return fmt.Errorf("deregister upstream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("deregister upstream: %w", statusError(resp))
	}
	return nil
}
