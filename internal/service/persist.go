// Service-level persistence wiring: the segment/journal data directory as
// the primary persistence path (incremental, crash-safe), with the legacy
// -state snapshot kept as a portable export/import format on top.
//
// Federation layout: every namespace persists into its OWN segment store
// under data-dir/<namespace>/, guarded by its own fingerprint — cross-tenant
// knowledge can never mix on disk, and a namespace registered while the
// data dir is open gets its store immediately. (Pre-federation data dirs
// wrote the journal at the data-dir root; those are simply ignored — move
// the journal/segments into a "default/" subdirectory to migrate. See
// docs/persistence.md.)
//
// Boot order matters: OpenDataDir replays committed knowledge BEFORE any
// snapshot import, so each engine rebuilds exactly the state the recorded
// operations describe; a snapshot loaded afterwards flows through the
// recording hooks and is itself persisted by the next checkpoint.

package service

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/segment"
)

// PersistConfig configures the service's segment-store persistence.
type PersistConfig struct {
	// CheckpointInterval is the background checkpoint period; 0 disables
	// background checkpointing (knowledge then commits only at drain).
	CheckpointInterval time.Duration
	// Logf receives recovery warnings and background checkpoint failures
	// (nil silences them). Messages are prefixed with the namespace.
	Logf func(format string, args ...any)
}

// OpenDataDir opens (or initializes) one segment store per registered
// namespace under dir/<namespace>/, replays each store's committed
// knowledge into its engine, and starts incremental checkpointing.
// Namespaces registered later get their store at registration time.
// Recovery is automatic: torn journal tails are truncated, corrupt segment
// files quarantined, and a store fingerprinted for a different upstream is
// quarantined wholesale — in every case the service boots with whatever
// knowledge was committed and intact, never refusing to start over bad
// state. Call before LoadState and before serving. An error leaves already-
// attached namespaces persisting; treat it as fatal and discard the server.
func (s *Server) OpenDataDir(dir string, cfg PersistConfig) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.dataDir != "" {
		return fmt.Errorf("service: data dir already open")
	}
	s.dataDir, s.persistCfg = dir, cfg
	for _, t := range s.tenantList() {
		if err := s.attachTenant(t); err != nil {
			return err
		}
	}
	return nil
}

// attachTenant opens one namespace's segment store under
// dataDir/<namespace>/ and attaches its engine's persister. No-op when the
// engine already persists. Caller holds stateMu.
func (s *Server) attachTenant(t *tenant) error {
	eng := t.engine()
	if eng.Persister() != nil {
		return nil
	}
	name := t.ns.Name()
	logf := s.persistCfg.Logf
	if logf != nil {
		base := logf
		logf = func(format string, args ...any) {
			base("["+name+"] "+format, args...)
		}
	}
	st, err := segment.Open(filepath.Join(s.dataDir, name), segment.Options{
		Fingerprint: eng.PersistFingerprint(),
		Logf:        logf,
	})
	if err != nil {
		return fmt.Errorf("service: open data dir for %q: %w", name, err)
	}
	if _, err := eng.AttachPersistence(st, core.PersistOptions{
		Interval: s.persistCfg.CheckpointInterval,
		Logf:     logf,
	}); err != nil {
		st.Close()
		return fmt.Errorf("service: attach persistence for %q: %w", name, err)
	}
	return nil
}

// Checkpoint commits every namespace's knowledge accumulated since its last
// checkpoint to the data directory. A no-op success when no data dir is
// open; on failure every namespace is still attempted and the first error
// is returned.
func (s *Server) Checkpoint() error {
	var first error
	for _, t := range s.tenantList() {
		if p := t.engine().Persister(); p != nil {
			if err := p.Checkpoint(); err != nil && first == nil {
				first = fmt.Errorf("service: checkpoint %q: %w", t.ns.Name(), err)
			}
		}
	}
	return first
}

// ClosePersistence takes a final checkpoint of every namespace and closes
// their stores. Call after the HTTP drain, when no more requests mutate the
// engines. Safe to call without an open data dir (no-op) and safe to call
// twice.
func (s *Server) ClosePersistence() error {
	var first error
	for _, t := range s.tenantList() {
		if p := t.engine().Persister(); p != nil {
			if err := p.Close(); err != nil && first == nil {
				first = fmt.Errorf("service: close persistence %q: %w", t.ns.Name(), err)
			}
		}
	}
	return first
}

// PersistStats returns the persistence counters summed across namespaces
// and whether persistence is enabled for any of them (per-namespace figures
// are on Stats().Upstreams). LastError is the first failing namespace's.
func (s *Server) PersistStats() (core.PersistStats, bool) {
	var agg core.PersistStats
	any := false
	for _, t := range s.tenantList() {
		p := t.engine().Persister()
		if p == nil {
			continue
		}
		any = true
		ps := p.Stats()
		agg.Store.Seq += ps.Store.Seq
		agg.Store.Checkpoints += ps.Store.Checkpoints
		agg.Store.Compactions += ps.Store.Compactions
		agg.Store.JournalRecords += ps.Store.JournalRecords
		agg.Store.SegmentFiles += ps.Store.SegmentFiles
		agg.Store.ReplayedDeltas += ps.Store.ReplayedDeltas
		agg.Store.BytesAppended += ps.Store.BytesAppended
		agg.PendingOps += ps.PendingOps
		agg.HistLo += ps.HistLo
		if agg.LastError == "" {
			agg.LastError = ps.LastError
		}
	}
	return agg, any
}

// LoadStateFile restores a -state snapshot (into the default namespace)
// with corrupt-file fallback: a missing file is a normal cold start, and an
// unreadable or corrupt snapshot is quarantined (renamed to path +
// ".corrupt") with a logged warning so the service boots cold instead of
// crash-looping on a bad file. warm reports whether the snapshot actually
// loaded; the returned error is reserved for real I/O failures (e.g.
// permissions), which should abort startup.
func (s *Server) LoadStateFile(path string, logf func(format string, args ...any)) (warm bool, err error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	loadErr := s.LoadState(f)
	f.Close()
	if loadErr == nil {
		return true, nil
	}
	quarantine := path + ".corrupt"
	if rerr := os.Rename(path, quarantine); rerr != nil {
		logf("state file %s unreadable (%v); quarantine failed too (%v), starting cold", path, loadErr, rerr)
		return false, nil
	}
	logf("state file %s unreadable (%v); quarantined to %s, starting cold", path, loadErr, quarantine)
	return false, nil
}
