// Service-level persistence wiring: the segment/journal data directory as
// the primary persistence path (incremental, crash-safe), with the legacy
// -state snapshot kept as a portable export/import format on top.
//
// Boot order matters: OpenDataDir replays committed knowledge BEFORE any
// snapshot import, so the engine rebuilds exactly the state the recorded
// operations describe; a snapshot loaded afterwards flows through the
// recording hooks and is itself persisted by the next checkpoint.

package service

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/segment"
)

// PersistConfig configures the service's segment-store persistence.
type PersistConfig struct {
	// CheckpointInterval is the background checkpoint period; 0 disables
	// background checkpointing (knowledge then commits only at drain).
	CheckpointInterval time.Duration
	// Logf receives recovery warnings and background checkpoint failures
	// (nil silences them).
	Logf func(format string, args ...any)
}

// OpenDataDir opens (or initializes) the segment store in dir, replays its
// committed knowledge into the engine, and starts incremental checkpointing.
// Recovery is automatic: torn journal tails are truncated, corrupt segment
// files quarantined, and a store fingerprinted for a different upstream is
// quarantined wholesale — in every case the service boots with whatever
// knowledge was committed and intact, never refusing to start over bad
// state. Call before LoadState and before serving.
func (s *Server) OpenDataDir(dir string, cfg PersistConfig) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.persist != nil {
		return fmt.Errorf("service: data dir already open")
	}
	st, err := segment.Open(dir, segment.Options{
		Fingerprint: s.engine.PersistFingerprint(),
		Logf:        cfg.Logf,
	})
	if err != nil {
		return fmt.Errorf("service: open data dir: %w", err)
	}
	p, err := s.engine.AttachPersistence(st, core.PersistOptions{
		Interval: cfg.CheckpointInterval,
		Logf:     cfg.Logf,
	})
	if err != nil {
		st.Close()
		return fmt.Errorf("service: attach persistence: %w", err)
	}
	s.persist = p
	return nil
}

// Checkpoint commits all knowledge accumulated since the last checkpoint to
// the data directory. A no-op success when no data dir is open.
func (s *Server) Checkpoint() error {
	if p := s.persist; p != nil {
		return p.Checkpoint()
	}
	return nil
}

// ClosePersistence takes a final checkpoint and closes the data directory.
// Call after the HTTP drain, when no more requests mutate the engine. Safe
// to call without an open data dir (no-op) and safe to call twice.
func (s *Server) ClosePersistence() error {
	if p := s.persist; p != nil {
		return p.Close()
	}
	return nil
}

// PersistStats returns the persister's counters and whether persistence is
// enabled at all.
func (s *Server) PersistStats() (core.PersistStats, bool) {
	if p := s.persist; p != nil {
		return p.Stats(), true
	}
	return core.PersistStats{}, false
}

// LoadStateFile restores a -state snapshot with corrupt-file fallback: a
// missing file is a normal cold start, and an unreadable or corrupt snapshot
// is quarantined (renamed to path + ".corrupt") with a logged warning so the
// service boots cold instead of crash-looping on a bad file. warm reports
// whether the snapshot actually loaded; the returned error is reserved for
// real I/O failures (e.g. permissions), which should abort startup.
func (s *Server) LoadStateFile(path string, logf func(format string, args ...any)) (warm bool, err error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	loadErr := s.LoadState(f)
	f.Close()
	if loadErr == nil {
		return true, nil
	}
	quarantine := path + ".corrupt"
	if rerr := os.Rename(path, quarantine); rerr != nil {
		logf("state file %s unreadable (%v); quarantine failed too (%v), starting cold", path, loadErr, rerr)
		return false, nil
	}
	logf("state file %s unreadable (%v); quarantined to %s, starting cold", path, loadErr, quarantine)
	return false, nil
}
