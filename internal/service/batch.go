// Batched reranking: POST /v1/rerank/batch.
//
// A batch carries N independent rerank requests in one HTTP round trip and
// runs them concurrently against the shared engine. Because every item's
// probes route through the engine's coalescing layer, overlapping queries
// inside one batch (and across concurrent batches) deduplicate at probe
// granularity: identical in-flight probes are issued once and charged to
// the item that issued them, so a batch of near-duplicate queries costs far
// less upstream than the same requests issued serially by cold clients.
//
// Admission is atomic and weighted: a batch of N reserves N session slots
// or is rejected whole with 429 — it can never be half-admitted past
// MaxConcurrentSessions. Items fail independently: each BatchItem carries
// its own status code and error, and one bad item does not poison the rest.

package service

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// BatchRequest is the /v1/rerank/batch request body.
type BatchRequest struct {
	Requests []RerankRequest `json:"requests"`
}

// BatchItem is the outcome of one batch entry, in request order.
type BatchItem struct {
	// Status is the item's HTTP-equivalent status code (200 on success).
	Status int `json:"status"`
	// Error describes the failure when Status != 200.
	Error string `json:"error,omitempty"`
	// Response is the item's result when Status == 200.
	Response *RerankResponse `json:"response,omitempty"`
}

// BatchResponse is the /v1/rerank/batch response body.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
	// QueriesIssued is the whole batch's upstream cost: the sum of the
	// items' ledgers. Probes deduplicated across items count once.
	QueriesIssued int64 `json:"queriesIssued"`
	// EngineQueries is the engine's lifetime upstream query count.
	EngineQueries int64 `json:"engineQueries"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Requests) > s.opts.MaxBatchItems {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds the %d-item limit", len(req.Requests), s.opts.MaxBatchItems))
		return
	}
	release, charge, ok := s.admit(w, r, len(req.Requests))
	if !ok {
		return
	}
	defer release()

	resp := s.RerankBatch(req)
	charge(resp.QueriesIssued)
	writeJSON(w, http.StatusOK, resp)
}

// RerankBatch runs every request of the batch concurrently and returns the
// per-item outcomes in request order. Exported for in-process callers; like
// Rerank it bypasses the HTTP edge's admission control.
func (s *Server) RerankBatch(req BatchRequest) *BatchResponse {
	s.batchRequests.Add(1)
	s.batchItems.Add(int64(len(req.Requests)))
	resp := &BatchResponse{Items: make([]BatchItem, len(req.Requests))}
	var wg sync.WaitGroup
	var issued atomic.Int64
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, cost, code, err := s.rerank(req.Requests[i])
			issued.Add(cost)
			if err != nil {
				resp.Items[i] = BatchItem{Status: code, Error: err.Error()}
				return
			}
			resp.Items[i] = BatchItem{Status: http.StatusOK, Response: r}
		}(i)
	}
	wg.Wait()
	resp.QueriesIssued = issued.Load()
	resp.EngineQueries = s.engine.Queries()
	return resp
}
