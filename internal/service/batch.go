// Batched reranking: POST /v1/rerank/batch and its namespace-scoped form
// POST /v1/upstreams/{ns}/rerank/batch.
//
// A batch carries N independent rerank requests in one HTTP round trip and
// runs them concurrently against one namespace's engine. Because every
// item's probes route through that engine's coalescing layer, overlapping
// queries inside one batch (and across concurrent batches) deduplicate at
// probe granularity: identical in-flight probes are issued once and charged
// to the item that issued them, so a batch of near-duplicate queries costs
// far less upstream than the same requests issued serially by cold clients.
//
// Admission is atomic and weighted: a batch of N reserves N session slots
// (scaled by the namespace's admission weight) or is rejected whole with
// 429 — it can never be half-admitted past the shared bound. Items fail
// independently: each BatchItem carries its own status code and error
// envelope, and one bad item does not poison the rest.

package service

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// BatchRequest is the /v1/rerank/batch request body. The whole batch runs
// against one namespace: Upstream on the legacy route ("" = default), the
// {ns} path wildcard on the namespace-scoped route. Per-item Upstream
// fields are ignored.
type BatchRequest struct {
	Upstream string          `json:"upstream,omitempty"`
	Requests []RerankRequest `json:"requests"`
}

// BatchItem is the outcome of one batch entry, in request order.
type BatchItem struct {
	// Status is the item's HTTP-equivalent status code (200 on success).
	Status int `json:"status"`
	// Error describes the failure when Status != 200, in the service's
	// standard error envelope shape.
	Error *ErrorInfo `json:"error,omitempty"`
	// Response is the item's result when Status == 200.
	Response *RerankResponse `json:"response,omitempty"`
}

// BatchResponse is the /v1/rerank/batch response body.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
	// QueriesIssued is the whole batch's upstream cost: the sum of the
	// items' ledgers. Probes deduplicated across items count once.
	QueriesIssued int64 `json:"queriesIssued"`
	// EngineQueries is the namespace engine's lifetime upstream query count.
	EngineQueries int64 `json:"engineQueries"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	t, ok := s.resolveTenant(w, r, req.Upstream)
	if !ok {
		return
	}
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Requests) > s.opts.MaxBatchItems {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Errorf("batch of %d exceeds the %d-item limit", len(req.Requests), s.opts.MaxBatchItems))
		return
	}
	release, charge, ok := s.admit(w, r, t, len(req.Requests))
	if !ok {
		return
	}
	defer release()

	setEpochHeader(w, t)
	resp := s.rerankBatch(t, req)
	charge(resp.QueriesIssued)
	writeJSON(w, http.StatusOK, resp)
}

// RerankBatch runs every request of the batch concurrently against the
// namespace req.Upstream addresses ("" = default) and returns the per-item
// outcomes in request order. Exported for in-process callers; like Rerank
// it bypasses the HTTP edge's admission control.
func (s *Server) RerankBatch(req BatchRequest) *BatchResponse {
	t, ok := s.tenantFor(req.Upstream)
	if !ok {
		resp := &BatchResponse{Items: make([]BatchItem, len(req.Requests))}
		info := errorInfo(http.StatusNotFound, ErrCodeUnknownUpstream, unknownUpstreamErr(req.Upstream))
		for i := range resp.Items {
			resp.Items[i] = BatchItem{Status: http.StatusNotFound, Error: info}
		}
		return resp
	}
	return s.rerankBatch(t, req)
}

func (s *Server) rerankBatch(t *tenant, req BatchRequest) *BatchResponse {
	t.batchRequests.Add(1)
	t.batchItems.Add(int64(len(req.Requests)))
	resp := &BatchResponse{Items: make([]BatchItem, len(req.Requests))}
	var wg sync.WaitGroup
	var issued atomic.Int64
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, cost, status, code, err := s.rerank(t, req.Requests[i])
			issued.Add(cost)
			if err != nil {
				resp.Items[i] = BatchItem{Status: status, Error: errorInfo(status, code, err)}
				return
			}
			resp.Items[i] = BatchItem{Status: http.StatusOK, Response: r}
		}(i)
	}
	wg.Wait()
	resp.QueriesIssued = issued.Load()
	resp.EngineQueries = t.engine().Queries()
	return resp
}
