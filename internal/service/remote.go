// Remote hidden-database adapter: lets the reranking service treat any HTTP
// top-k search endpoint (such as cmd/hiddendb, or a scraper shim in front of
// a real web database) as a hidden.Database. This is the deployment §1
// describes — the reranker holds no data, only the public search interface.

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/hidden"
	"repro/internal/query"
	"repro/internal/types"
)

// SearchRequest is the wire form of one top-k search query (the hiddendb
// protocol).
type SearchRequest struct {
	Ranges  []RangeSpec       `json:"ranges,omitempty"`
	Filters map[string]string `json:"filters,omitempty"`
}

// SearchResponse is the hiddendb search answer.
type SearchResponse struct {
	Tuples   []WireTuple `json:"tuples"`
	Overflow bool        `json:"overflow"`
}

// WireTuple is a tuple over the wire, keyed by attribute name.
type WireTuple struct {
	ID  int                `json:"id"`
	Ord map[string]float64 `json:"ord"`
	Cat map[string]string  `json:"cat,omitempty"`
}

// SchemaResponse describes the upstream search interface.
type SchemaResponse struct {
	K     int        `json:"k"`
	Attrs []AttrSpec `json:"attrs"`
}

// AttrSpec is one attribute of the upstream schema.
type AttrSpec struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"` // "ordinal" or "categorical"
	Min    float64  `json:"min,omitempty"`
	Max    float64  `json:"max,omitempty"`
	Values []string `json:"values,omitempty"`
}

// RemoteDB implements hidden.Database over the hiddendb HTTP protocol.
type RemoteDB struct {
	baseURL string
	client  *http.Client
	schema  *types.Schema
	k       int
}

// DialRemote fetches the remote schema and returns a ready database handle.
func DialRemote(baseURL string, client *http.Client) (*RemoteDB, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := client.Get(baseURL + "/v1/schema")
	if err != nil {
		return nil, fmt.Errorf("fetch remote schema: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch remote schema: status %s", resp.Status)
	}
	var sr SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decode remote schema: %w", err)
	}
	attrs := make([]types.Attribute, 0, len(sr.Attrs))
	for _, a := range sr.Attrs {
		switch a.Kind {
		case "ordinal":
			attrs = append(attrs, types.Attribute{
				Name: a.Name, Kind: types.Ordinal,
				Domain: types.Domain{Min: a.Min, Max: a.Max},
			})
		case "categorical":
			attrs = append(attrs, types.Attribute{
				Name: a.Name, Kind: types.Categorical, Values: a.Values,
			})
		default:
			return nil, fmt.Errorf("remote attribute %q has unknown kind %q", a.Name, a.Kind)
		}
	}
	schema, err := types.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("invalid remote schema: %w", err)
	}
	if sr.K < 1 {
		return nil, fmt.Errorf("remote reports invalid k=%d", sr.K)
	}
	return &RemoteDB{baseURL: baseURL, client: client, schema: schema, k: sr.K}, nil
}

// TopK implements hidden.Database.
func (r *RemoteDB) TopK(q query.Query) (hidden.Result, error) {
	req := SearchRequest{Filters: q.Cats}
	for attr, iv := range q.Ranges {
		name := r.schema.Attr(attr).Name
		lo, hi := iv.Lo, iv.Hi
		rs := RangeSpec{Attr: name, MinOpen: iv.LoOpen, MaxOpen: iv.HiOpen}
		if !isNegInf(lo) {
			v := lo
			rs.Min = &v
		}
		if !isPosInf(hi) {
			v := hi
			rs.Max = &v
		}
		req.Ranges = append(req.Ranges, rs)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return hidden.Result{}, err
	}
	resp, err := r.client.Post(r.baseURL+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return hidden.Result{}, fmt.Errorf("remote search: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return hidden.Result{}, hidden.ErrRateLimited
	}
	if resp.StatusCode != http.StatusOK {
		return hidden.Result{}, fmt.Errorf("remote search: status %s", resp.Status)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return hidden.Result{}, fmt.Errorf("decode remote search answer: %w", err)
	}
	out := hidden.Result{Overflow: sr.Overflow}
	for _, wt := range sr.Tuples {
		t, err := r.fromWire(wt)
		if err != nil {
			return hidden.Result{}, err
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

func (r *RemoteDB) fromWire(wt WireTuple) (types.Tuple, error) {
	t := types.Tuple{ID: wt.ID, Ord: make([]float64, r.schema.Len()), Cat: wt.Cat}
	for name, v := range wt.Ord {
		i := r.schema.Index(name)
		if i < 0 {
			return t, fmt.Errorf("remote tuple %d has unknown attribute %q", wt.ID, name)
		}
		t.Ord[i] = v
	}
	return t, nil
}

// K implements hidden.Database.
func (r *RemoteDB) K() int { return r.k }

// Schema implements hidden.Database.
func (r *RemoteDB) Schema() *types.Schema { return r.schema }

func isNegInf(v float64) bool { return v < -1e308 }
func isPosInf(v float64) bool { return v > 1e308 }

// schemaResponse renders a schema plus system-k in the wire form both
// hiddendb's and the rerank service's /v1/schema endpoints serve.
func schemaResponse(schema *types.Schema, k int) SchemaResponse {
	sr := SchemaResponse{K: k}
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		spec := AttrSpec{Name: a.Name}
		if a.Kind == types.Ordinal {
			spec.Kind = "ordinal"
			spec.Min, spec.Max = a.Domain.Min, a.Domain.Max
		} else {
			spec.Kind = "categorical"
			spec.Values = a.Values
		}
		sr.Attrs = append(sr.Attrs, spec)
	}
	return sr
}

// HiddenDBHandler serves a *hidden.DB over the hiddendb HTTP protocol
// (the counterpart of RemoteDB, used by cmd/hiddendb and tests).
func HiddenDBHandler(db *hidden.DB) http.Handler {
	mux := http.NewServeMux()
	schema := db.Schema()
	mux.HandleFunc("GET /v1/schema", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, schemaResponse(schema, db.K()))
	})
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		var req SearchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("decode search: %w", err))
			return
		}
		q := query.New()
		for _, rs := range req.Ranges {
			idx := schema.Index(rs.Attr)
			if idx < 0 || schema.Attr(idx).Kind != types.Ordinal {
				httpError(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("unknown ordinal attribute %q", rs.Attr))
				return
			}
			iv := types.FullInterval()
			if rs.Min != nil {
				iv.Lo, iv.LoOpen = *rs.Min, rs.MinOpen
			}
			if rs.Max != nil {
				iv.Hi, iv.HiOpen = *rs.Max, rs.MaxOpen
			}
			q = q.WithRange(idx, iv)
		}
		for name, val := range req.Filters {
			q = q.WithCat(name, val)
		}
		res, err := db.TopK(q)
		if err == hidden.ErrRateLimited {
			httpError(w, http.StatusTooManyRequests, ErrCodeUpstreamRateLimited, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, ErrCodeUpstreamFailed, err)
			return
		}
		out := SearchResponse{Overflow: res.Overflow}
		for _, t := range res.Tuples {
			wt := WireTuple{ID: t.ID, Ord: map[string]float64{}, Cat: t.Cat}
			for _, i := range schema.OrdinalIndexes() {
				wt.Ord[schema.Attr(i).Name] = t.Ord[i]
			}
			out.Tuples = append(out.Tuples, wt)
		}
		writeJSON(w, http.StatusOK, out)
	})
	// POST /v1/mutate edits one tuple's ordinal value in place — the drift
	// injection hook tests and the e2e harness use to make the hidden corpus
	// "live" so sentinel passes have something to detect. Real upstreams
	// obviously drift on their own; cmd/hiddendb needs to be told to.
	mux.HandleFunc("POST /v1/mutate", func(w http.ResponseWriter, r *http.Request) {
		var req MutateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("decode mutate: %w", err))
			return
		}
		idx := schema.Index(req.Attr)
		if idx < 0 || schema.Attr(idx).Kind != types.Ordinal {
			httpError(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("unknown ordinal attribute %q", req.Attr))
			return
		}
		if !db.SetOrd(req.ID, idx, req.Value) {
			httpError(w, http.StatusNotFound, ErrCodeBadRequest, fmt.Errorf("no tuple with id %d", req.ID))
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// MutateRequest is the POST /v1/mutate body of the hiddendb protocol: set
// tuple ID's ordinal attribute (by name) to Value.
type MutateRequest struct {
	ID    int     `json:"id"`
	Attr  string  `json:"attr"`
	Value float64 `json:"value"`
}
