// Serving-tier admission: the request-shedding layer in front of the
// engines.
//
// The registry's shared session gate (core.Registry.TryAdmit) bounds
// in-flight work across all namespaces; this file adds the HTTP semantics
// around it — 429 + Retry-After on overload, an optional per-client
// upstream-query budget window (the paper's cost ledger turned into a QoS
// primitive: every response already reports queriesIssued, here the same
// number is charged against a header-keyed allowance, pooled across
// namespaces), and the draining state a graceful shutdown uses to stop
// admitting while in-flight requests finish.

package service

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
)

// Options configure the serving tier around the namespace registry.
type Options struct {
	// Core seeds every namespace's engine options. Core.MaxConcurrentSessions
	// is the SHARED session admission bound across all namespaces (scaled
	// per-namespace by UpstreamConfig.AdmissionWeight); Core.N is the
	// default size estimate, overridable per namespace.
	Core core.Options
	// MaxBodyBytes bounds request bodies (default 1 MiB). Oversized
	// bodies get 413.
	MaxBodyBytes int64
	// MaxBatchItems bounds the per-call batch size (default 64).
	MaxBatchItems int
	// ClientBudget, when > 0, is the number of upstream queries each
	// client (keyed by the X-Client-ID header; empty key is one shared
	// anonymous bucket) may cost per ClientBudgetWindow. A client over
	// budget gets 429 with Retry-After set to the window's remaining
	// seconds. Deduplicated/cached probes are free here exactly as in
	// response accounting: only queries that reached the upstream charge.
	ClientBudget int64
	// ClientBudgetWindow is the budget window length (default 1 minute).
	ClientBudgetWindow time.Duration
	// StreamWriteTimeout bounds each NDJSON event write on
	// /v1/rerank/stream (default 30s). A client that stops reading past
	// this stalls its write, which ends the stream and releases its
	// admission slot — stalled readers cannot pin capacity forever.
	StreamWriteTimeout time.Duration
	// Acquire configures proactive background knowledge acquisition per
	// namespace (disabled by default; see acquire.go and
	// docs/acquisition.md).
	Acquire AcquireOptions
	// Sentinel configures periodic drift detection per namespace (disabled
	// by default; see sentinel.go and docs/epochs.md).
	Sentinel SentinelOptions
	// Guard configures the retry/hedge/health layer wrapped around REMOTE
	// upstreams (in-process databases are never wrapped — they cannot flake).
	Guard GuardConfig
}

// SentinelOptions configure the per-namespace sentinel scheduler: the cheap
// periodic probe pass that detects upstream drift and bumps the knowledge
// epoch (see internal/core/sentinel.go).
type SentinelOptions struct {
	// Enabled turns the per-namespace sentinel loop on.
	Enabled bool
	// Interval is the pass period (default 30s).
	Interval time.Duration
}

// GuardConfig configures the hidden.Guard wrapped around every remote
// upstream at registration. The guard's backoff/health defaults apply; only
// the knobs operators actually tune are surfaced here.
type GuardConfig struct {
	// Disable skips wrapping remote upstreams entirely.
	Disable bool
	// Retries is the number of extra attempts per logical probe
	// (< 0 disables retrying; 0 means the guard default of 2).
	Retries int
	// HedgeAfter launches a hedged second attempt when the first has not
	// answered within this duration (0 disables hedging).
	HedgeAfter time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxBatchItems <= 0 {
		o.MaxBatchItems = 64
	}
	if o.ClientBudgetWindow <= 0 {
		o.ClientBudgetWindow = time.Minute
	}
	if o.StreamWriteTimeout <= 0 {
		o.StreamWriteTimeout = 30 * time.Second
	}
	if o.Sentinel.Interval <= 0 {
		o.Sentinel.Interval = 30 * time.Second
	}
	return o
}

// ClientIDHeader keys per-client budget windows.
const ClientIDHeader = "X-Client-ID"

// budgetWindow is one client's running allowance window. inflight counts
// the client's requests currently executing: each reserves one unit of the
// allowance at admission, so a concurrent burst cannot multiply the budget
// by passing the check before any completed request has been charged.
type budgetWindow struct {
	start    time.Time
	used     int64
	inflight int64
}

// budgetLedger tracks per-client upstream-query spending in fixed windows.
// Windows are lazily reset on first touch after expiry; expired idle
// clients are pruned at most once per window, so the map stays proportional
// to the set of clients active within the last window and admission never
// pays a per-request O(clients) scan.
type budgetLedger struct {
	limit  int64
	window time.Duration
	now    func() time.Time

	mu        sync.Mutex
	clients   map[string]*budgetWindow
	lastPrune time.Time
}

func newBudgetLedger(limit int64, window time.Duration, now func() time.Time) *budgetLedger {
	if limit <= 0 {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	return &budgetLedger{
		limit:   limit,
		window:  window,
		now:     now,
		clients: make(map[string]*budgetWindow),
	}
}

// begin admits one request against the client's allowance, reserving one
// in-flight unit, and returns the settle function the caller must invoke
// when the request finishes with its actual upstream cost. When the client
// is over budget (spent plus in-flight reservations reach the limit) it
// returns ok=false with the backoff to advertise. Actual charges land at
// settle time, so one request may overshoot its remaining allowance — the
// overshoot is carried until the window that absorbed it expires.
func (l *budgetLedger) begin(key string) (ok bool, retryAfter time.Duration, settle func(issued int64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	w := l.fetch(key, now)
	if w.used+w.inflight >= l.limit {
		if w.used >= l.limit {
			return false, w.start.Add(l.window).Sub(now), nil
		}
		// Bound hit by concurrent in-flight reservations, not spent
		// budget: a short backoff, since slots free as requests finish.
		return false, time.Second, nil
	}
	w.inflight++
	return true, 0, func(issued int64) {
		l.mu.Lock()
		defer l.mu.Unlock()
		w.inflight--
		if issued > 0 {
			w.used += issued
		}
	}
}

// fetch returns the client's live window, resetting it if expired, and
// occasionally prunes idle expired clients. Caller holds l.mu.
func (l *budgetLedger) fetch(key string, now time.Time) *budgetWindow {
	w, ok := l.clients[key]
	if !ok {
		if len(l.clients) >= 1024 && now.Sub(l.lastPrune) >= l.window {
			for k, old := range l.clients {
				if old.inflight == 0 && now.Sub(old.start) >= l.window {
					delete(l.clients, k)
				}
			}
			l.lastPrune = now
		}
		w = &budgetWindow{start: now}
		l.clients[key] = w
	} else if now.Sub(w.start) >= l.window {
		w.start, w.used = now, 0
	}
	return w
}

// admit runs the full admission pipeline for a request that will create
// weight sessions against tenant t: drain check, per-client budget check,
// shared capacity reservation (scaled by the namespace's admission weight).
// On rejection it writes the error envelope (503 draining, or 429 with
// Retry-After) and returns ok=false. On success the caller must invoke both
// returned functions when the request finishes: release frees the session
// slots (idempotent) and charge books the request's actual upstream cost
// against the client's budget window.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, t *tenant, weight int) (release func(), charge func(issued int64), ok bool) {
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		httpErrorRetry(w, http.StatusServiceUnavailable, ErrCodeDraining, errDraining, time.Second)
		return nil, nil, false
	}
	var settle func(int64)
	if s.budgets != nil {
		clientKey := r.Header.Get(ClientIDHeader)
		allowed, retry, fn := s.budgets.begin(clientKey)
		if !allowed {
			s.rejectedBudget.Add(1)
			httpErrorRetry(w, http.StatusTooManyRequests, ErrCodeBudget,
				fmt.Errorf("client %q over upstream-query budget (retry in %s)", clientKey, retry.Round(time.Second)),
				retry)
			return nil, nil, false
		}
		settle = fn
	}
	rel, admitted := s.registry.TryAdmit(t.ns, weight)
	if !admitted {
		if settle != nil {
			settle(0) // return the budget reservation
		}
		s.rejectedCapacity.Add(1)
		httpErrorRetry(w, http.StatusTooManyRequests, ErrCodeCapacity,
			fmt.Errorf("server at capacity (%d in-flight session weight, limit %d)",
				s.registry.SessionsInFlight(), s.registry.SessionCapacity()),
			time.Second)
		return nil, nil, false
	}
	charge = func(issued int64) {
		if settle != nil {
			settle(issued)
		}
	}
	return rel, charge, true
}

// retryAfterSeconds renders a duration as a Retry-After header value,
// rounded up so clients never retry before the window actually resets.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprint(secs)
}

var errDraining = fmt.Errorf("server is draining for shutdown")

// BeginDrain puts the server into draining mode: every subsequent request
// (including /healthz, so load balancers deregister the instance) is
// rejected with 503 while in-flight requests run to completion. Background
// acquirers are stopped FIRST — speculative acquisition must not race the
// final checkpoints or prolong shutdown — and BeginDrain returns only once
// any in-flight acquisition has yielded. Callers typically pair it with
// http.Server.Shutdown and a final SaveState — see cmd/rerankd. Draining is
// not reversible.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	for _, t := range s.tenantList() {
		t.stopAcquirer()
		t.stopSentinel()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }
