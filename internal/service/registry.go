// The upstream registry API: programmatic registration of upstream
// namespaces and the /v1/upstreams HTTP surface.
//
//	GET    /v1/upstreams                   list registered upstreams (rich objects;
//	                                       ?format=names for the name-only shape)
//	POST   /v1/upstreams                   dial {url} and register it as namespace {name}
//	GET    /v1/upstreams/{ns}              one upstream's descriptor
//	POST   /v1/upstreams/{ns}/revalidate   immediate sentinel pass (drift check now)
//	DELETE /v1/upstreams/{ns}              deregister (finalizes the namespace's persistence)
//
// Each descriptor carries the namespace name, upstream URL, the engine's
// persistence fingerprint (schema + k + system ranker — the identity that
// guards data-dir reuse), the upstream schema, the namespace's slice of the
// service counters, and the living-upstream state: knowledge epoch, probe
// guard health, last sentinel pass, and the count of stale regions awaiting
// lazy re-validation.
//
// Remote upstreams registered here are wrapped in a hidden.Guard (retries,
// optional hedging, half-open health state machine) unless Options.Guard
// disables it; in-process databases are never wrapped and always report
// "healthy".

package service

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/hidden"
	"repro/internal/segment"
)

// UpstreamConfig describes one upstream to register: the POST /v1/upstreams
// body and the argument of the programmatic registration calls.
type UpstreamConfig struct {
	// Name is the namespace name ([a-z0-9][a-z0-9._-]*, ≤64 bytes);
	// defaults to DefaultUpstream when empty.
	Name string `json:"name"`
	// URL is the upstream hiddendb endpoint to dial (required over HTTP;
	// ignored by RegisterUpstreamDB, which brings its own database).
	URL string `json:"url,omitempty"`
	// N overrides the server-wide Core.N size estimate for this
	// namespace's dense-index thresholds (0 = inherit).
	N int `json:"n,omitempty"`
	// AdmissionWeight scales what one session against this namespace
	// draws from the shared admission capacity (default 1).
	AdmissionWeight int `json:"admissionWeight,omitempty"`
}

// UpstreamInfo is one registered upstream's descriptor.
type UpstreamInfo struct {
	Name string `json:"name"`
	URL  string `json:"url,omitempty"`
	// Default marks the namespace un-namespaced legacy requests hit.
	Default         bool `json:"default,omitempty"`
	AdmissionWeight int  `json:"admissionWeight"`
	// Fingerprint is the namespace's persistence identity (schema, k,
	// system ranker); a data dir recorded under a different fingerprint is
	// quarantined rather than replayed.
	Fingerprint segment.Fingerprint `json:"fingerprint"`
	Schema      SchemaResponse      `json:"schema"`
	Stats       UpstreamStats       `json:"stats"`

	// Epoch is the namespace's current knowledge epoch: every piece of
	// acquired knowledge carries the epoch it was learned under, and
	// knowledge from older epochs is re-validated lazily on first touch.
	Epoch int64 `json:"epoch"`
	// Health is the probe guard's view of the upstream: "healthy",
	// "degraded", or "down". In-process namespaces are always "healthy".
	Health string `json:"health"`
	// LastSentinelUnix is the unix time of the last completed sentinel
	// pass (0 = none yet).
	LastSentinelUnix int64 `json:"lastSentinelUnix"`
	// BackoffUntilUnix is when a down upstream's backoff window expires
	// (0 unless down).
	BackoffUntilUnix int64 `json:"backoffUntilUnix,omitempty"`
	// StaleRegions counts dense regions acquired under an older epoch and
	// not yet re-validated.
	StaleRegions int `json:"staleRegions"`
}

// UpstreamsResponse is the GET /v1/upstreams body.
type UpstreamsResponse struct {
	// Default names the namespace un-namespaced requests resolve to.
	Default   string         `json:"default,omitempty"`
	Upstreams []UpstreamInfo `json:"upstreams"`
}

// UpstreamNamesResponse is the GET /v1/upstreams?format=names body — the
// pre-redesign list shape, kept for scripts that only want the names.
type UpstreamNamesResponse struct {
	Default   string   `json:"default,omitempty"`
	Upstreams []string `json:"upstreams"`
}

// RevalidateResponse is the POST /v1/upstreams/{ns}/revalidate body: the
// outcome of the immediate sentinel pass it triggered.
type RevalidateResponse struct {
	// Epoch is the namespace's knowledge epoch after the pass.
	Epoch int64 `json:"epoch"`
	// Bumped reports whether the pass detected drift and bumped the epoch.
	Bumped bool `json:"bumped"`
	// Queries is the upstream cost of the pass (charged to the engine
	// ledger, like every logical probe).
	Queries int64 `json:"queries"`
	// StaleRegions counts dense regions now awaiting lazy re-validation.
	StaleRegions int `json:"staleRegions"`
}

// RegisterUpstreamDB registers a namespace over an in-process database
// handle. The first registered namespace becomes the default. If a data dir
// is open, the namespace immediately gets its own segment store under
// data-dir/<name>/.
func (s *Server) RegisterUpstreamDB(cfg UpstreamConfig, db hidden.Database) (*UpstreamInfo, error) {
	if cfg.Name == "" {
		cfg.Name = DefaultUpstream
	}
	engOpts := s.opts.Core
	if cfg.N > 0 {
		engOpts.N = cfg.N
	}
	s.tmu.Lock()
	ns, err := s.registry.Register(cfg.Name, db, core.NamespaceConfig{
		Engine:          engOpts,
		AdmissionWeight: cfg.AdmissionWeight,
	})
	if err != nil {
		s.tmu.Unlock()
		return nil, err
	}
	t := &tenant{ns: ns, db: db, url: cfg.URL}
	if g, ok := db.(*hidden.Guard); ok {
		t.guard = g
	}
	s.tenants[cfg.Name] = t
	s.tmu.Unlock()

	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.dataDir != "" {
		if err := s.attachTenant(t); err != nil {
			// Roll the registration back: a namespace that cannot open its
			// store must not serve with persistence silently disabled.
			s.tmu.Lock()
			delete(s.tenants, cfg.Name)
			s.tmu.Unlock()
			_, _ = s.registry.Deregister(cfg.Name)
			return nil, err
		}
	}
	// The acquirer starts after any persistence replay so a restored heat
	// sketch immediately seeds its candidate ranking. Nothing to start on a
	// draining server: BeginDrain has already stopped acquisition for good.
	if s.opts.Acquire.Enabled && !s.draining.Load() {
		s.startAcquirer(t)
	}
	// The sentinel also starts post-replay: its first pass baselines the
	// upstream's current answers, so restored knowledge that predates a
	// corpus change is caught by the second pass at the latest.
	if s.opts.Sentinel.Enabled && !s.draining.Load() {
		s.startSentinel(t)
	}
	info := s.upstreamInfo(t)
	return &info, nil
}

// RegisterUpstream dials a remote hiddendb endpoint and registers it as a
// namespace (the programmatic form of POST /v1/upstreams). The remote is
// wrapped in a probe guard — retries, optional hedging, half-open health —
// unless Options.Guard.Disable is set.
func (s *Server) RegisterUpstream(cfg UpstreamConfig) (*UpstreamInfo, error) {
	if cfg.URL == "" {
		return nil, errors.New("service: upstream url required")
	}
	rdb, err := DialRemote(cfg.URL, nil)
	if err != nil {
		return nil, &dialError{fmt.Errorf("service: dial upstream %q: %w", cfg.URL, err)}
	}
	var db hidden.Database = rdb
	if !s.opts.Guard.Disable {
		db = hidden.NewGuard(rdb, hidden.GuardOptions{
			Retries:    s.opts.Guard.Retries,
			HedgeAfter: s.opts.Guard.HedgeAfter,
		})
	}
	return s.RegisterUpstreamDB(cfg, db)
}

// DeregisterUpstream removes a namespace and finalizes its persistence with
// a last checkpoint. The default namespace can only be removed once it is
// the last one left.
//
// Ordering is stop-then-finalize: the namespace's background loops (acquirer
// and sentinel) are stopped — waiting for any in-flight tick to yield —
// BEFORE the registry entry is removed and the final checkpoint runs. The
// previous deregister-first ordering raced an in-flight acquirer tick
// against teardown: the tick could still be probing (and feeding the
// persister) while Close() wrote the "final" checkpoint, losing its
// knowledge or tripping over the closed store.
func (s *Server) DeregisterUpstream(name string) error {
	s.tmu.RLock()
	t := s.tenants[name]
	s.tmu.RUnlock()
	if t != nil {
		t.stopAcquirer()
		t.stopSentinel()
	}
	s.tmu.Lock()
	ns, err := s.registry.Deregister(name)
	if err != nil {
		s.tmu.Unlock()
		// The namespace stays registered (unknown names reach here too, with
		// t == nil): restart what was stopped so a refused DELETE — e.g. of
		// the default namespace — leaves the server exactly as it was.
		if t != nil && !s.draining.Load() {
			if s.opts.Acquire.Enabled {
				s.startAcquirer(t)
			}
			if s.opts.Sentinel.Enabled {
				s.startSentinel(t)
			}
		}
		return err
	}
	delete(s.tenants, name)
	s.tmu.Unlock()
	// Final checkpoint outside the locks, against a quiesced engine:
	// in-flight requests that resolved the tenant before removal drain on
	// their own; their knowledge past this point is simply not persisted.
	if p := ns.Engine().Persister(); p != nil {
		if err := p.Close(); err != nil {
			return fmt.Errorf("service: finalize persistence for %q: %w", name, err)
		}
	}
	return nil
}

// upstreamInfo renders one tenant's registry descriptor.
func (s *Server) upstreamInfo(t *tenant) UpstreamInfo {
	eng := t.engine()
	_, _, lastSentinel := eng.SentinelStats()
	info := UpstreamInfo{
		Name:             t.ns.Name(),
		URL:              t.url,
		Default:          s.registry.Default() == t.ns,
		AdmissionWeight:  t.ns.AdmissionWeight(),
		Fingerprint:      eng.PersistFingerprint(),
		Schema:           schemaResponse(t.db.Schema(), t.db.K()),
		Stats:            s.tenantStats(t),
		Epoch:            eng.Epoch(),
		Health:           hidden.HealthHealthy.String(),
		LastSentinelUnix: lastSentinel,
		StaleRegions:     eng.Knowledge().StaleRegions(),
	}
	if t.guard != nil {
		h := t.guard.Health()
		info.Health = h.State.String()
		if !h.BackoffUntil.IsZero() {
			info.BackoffUntilUnix = h.BackoffUntil.Unix()
		}
	}
	return info
}

func (s *Server) handleListUpstreams(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "names" {
		resp := UpstreamNamesResponse{Upstreams: []string{}}
		if def := s.registry.Default(); def != nil {
			resp.Default = def.Name()
		}
		for _, t := range s.tenantList() {
			resp.Upstreams = append(resp.Upstreams, t.ns.Name())
		}
		sort.Strings(resp.Upstreams)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp := UpstreamsResponse{Upstreams: []UpstreamInfo{}}
	if def := s.registry.Default(); def != nil {
		resp.Default = def.Name()
	}
	for _, t := range s.tenantList() {
		resp.Upstreams = append(resp.Upstreams, s.upstreamInfo(t))
	}
	sort.Slice(resp.Upstreams, func(i, j int) bool { return resp.Upstreams[i].Name < resp.Upstreams[j].Name })
	writeJSON(w, http.StatusOK, resp)
}

// handleRevalidate runs an immediate sentinel pass against the namespace's
// upstream — the operator's "check for drift NOW" button — and reports the
// resulting epoch state. An upstream failure maps exactly like a rerank-path
// probe failure (down → 503, degraded → 502, rate-limited → 429).
func (s *Server) handleRevalidate(w http.ResponseWriter, r *http.Request) {
	t, ok := s.resolveTenant(w, r, "")
	if !ok {
		return
	}
	eng := t.engine()
	bumped, queries, err := eng.SentinelPass()
	if err != nil {
		status, code := upstreamStatus(err)
		httpError(w, status, code, fmt.Errorf("sentinel pass failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, RevalidateResponse{
		Epoch:        eng.Epoch(),
		Bumped:       bumped,
		Queries:      queries,
		StaleRegions: eng.Knowledge().StaleRegions(),
	})
}

func (s *Server) handleGetUpstream(w http.ResponseWriter, r *http.Request) {
	t, ok := s.resolveTenant(w, r, "")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.upstreamInfo(t))
}

func (s *Server) handleRegisterUpstream(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		httpErrorRetry(w, http.StatusServiceUnavailable, ErrCodeDraining, errDraining, time.Second)
		return
	}
	var cfg UpstreamConfig
	if !s.decodeBody(w, r, &cfg) {
		return
	}
	if cfg.URL == "" {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, errors.New("upstream url required"))
		return
	}
	info, err := s.RegisterUpstream(cfg)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrNamespaceExists):
			httpError(w, http.StatusConflict, ErrCodeUpstreamExists, err)
		case isDialError(err):
			httpError(w, http.StatusBadGateway, ErrCodeUpstreamFailed, err)
		default:
			httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleDeregisterUpstream(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("ns")
	if err := s.DeregisterUpstream(name); err != nil {
		switch {
		case errors.Is(err, core.ErrNamespaceUnknown):
			httpError(w, http.StatusNotFound, ErrCodeUnknownUpstream, err)
		case errors.Is(err, core.ErrNamespaceDefault):
			httpError(w, http.StatusConflict, ErrCodeDefaultUpstream, err)
		default:
			httpError(w, http.StatusInternalServerError, ErrCodeUpstreamFailed, err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// dialError marks a RegisterUpstream failure that happened talking to the
// upstream (as opposed to failing local validation), so the HTTP handler
// can answer 502 instead of 400.
type dialError struct{ err error }

func (e *dialError) Error() string { return e.err.Error() }
func (e *dialError) Unwrap() error { return e.err }

func isDialError(err error) bool {
	var de *dialError
	return errors.As(err, &de)
}
