// Command rerankd runs the query reranking service: a third-party HTTP
// daemon that answers user queries under arbitrary monotone ranking
// functions using nothing but upstream top-k search interfaces.
//
// One process federates any number of upstreams, each as an isolated
// knowledge namespace. -upstream is repeatable and takes either a bare URL
// (registered as the "default" namespace) or name=URL:
//
//	rerankd -upstream http://localhost:8081 -addr :8080
//	rerankd -upstream diamonds=http://localhost:8081 \
//	        -upstream autos=http://localhost:8082 -addr :8080
//	rerankd -dataset bluenile -n 20000 -addr :8080
//
// The first -upstream becomes the default namespace, served by the legacy
// un-namespaced routes; every namespace is also served at
// /v1/upstreams/{name}/..., and more can be registered at runtime via
// POST /v1/upstreams. Then:
//
//	curl -s localhost:8080/v1/upstreams
//	curl -s localhost:8080/v1/upstreams/diamonds/rerank -d '{
//	  "ranking": {"kind":"ratio","attrs":["Price","Carat"]},
//	  "filters": {"Shape":"Round"},
//	  "h": 5}'
//
// Production knobs: -max-sessions bounds in-flight sessions across all
// namespaces (excess gets 429 + Retry-After), -client-budget/
// -client-budget-window meter upstream queries per X-Client-ID, and
// SIGTERM/SIGINT triggers a graceful drain — admission stops (healthz flips
// to 503), in-flight requests finish within -drain-timeout, and with -state
// set the default namespace's knowledge is snapshotted so the next start is
// warm. See docs/operations.md and docs/api.md.
//
// Crash safety: -data-dir enables segment/journal persistence — every
// namespace checkpoints incrementally into its own data-dir/<name>/ store
// every -checkpoint-interval while serving, so even a kill -9 restarts warm
// up to the last committed checkpoint. The -state snapshot remains as a
// portable export/import of the default namespace on top; see
// docs/persistence.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/segment"
	"repro/internal/service"
)

// upstreamFlag accumulates repeated -upstream values, each "URL" or
// "name=URL".
type upstreamFlag []service.UpstreamConfig

func (u *upstreamFlag) String() string {
	parts := make([]string, len(*u))
	for i, cfg := range *u {
		parts[i] = cfg.Name + "=" + cfg.URL
	}
	return strings.Join(parts, ",")
}

func (u *upstreamFlag) Set(v string) error {
	name, url := service.DefaultUpstream, v
	// "name=URL" form: only when the part before the first '=' looks like a
	// name, not a URL fragment (bare URLs may carry '=' in their query).
	if i := strings.Index(v, "="); i >= 0 && !strings.ContainsAny(v[:i], ":/") {
		name, url = v[:i], v[i+1:]
	}
	if url == "" {
		return fmt.Errorf("empty upstream URL in %q", v)
	}
	if err := core.ValidateNamespaceName(name); err != nil {
		return err
	}
	for _, cfg := range *u {
		if cfg.Name == name {
			return fmt.Errorf("duplicate upstream name %q", name)
		}
	}
	*u = append(*u, service.UpstreamConfig{Name: name, URL: url})
	return nil
}

func main() {
	var upstreams upstreamFlag
	flag.Var(&upstreams, "upstream", "upstream hiddendb search endpoint, URL or name=URL (repeatable; the first becomes the default namespace)")
	var (
		name         = flag.String("dataset", "", "in-process dataset instead of -upstream: dot, bluenile, yahooautos")
		n            = flag.Int("n", 20000, "tuples for the in-process dataset")
		seed         = flag.Int64("seed", 160205100, "generator seed for the in-process dataset")
		sizeHint     = flag.Int("size-hint", 0, "upstream size estimate for dense-index thresholds (0 = n)")
		addr         = flag.String("addr", ":8080", "listen address")
		state        = flag.String("state", "", "snapshot file for the default namespace: loaded at startup, saved after the SIGINT/SIGTERM drain")
		dataDir      = flag.String("data-dir", "", "segment/journal persistence directory: each namespace replays and checkpoints its own <dir>/<name>/ store (crash-safe, unlike -state)")
		ckptInterval = flag.Duration("checkpoint-interval", 15*time.Second, "background checkpoint period for -data-dir (0 = checkpoint only at drain)")
		cache        = flag.Int("probe-cache", 0, "probe-result LRU entries per namespace (0 = default 1024, negative disables the cache)")
		noCoal       = flag.Bool("no-coalesce", false, "disable probe coalescing (for upstreams whose corpus changes mid-run)")
		width        = flag.Int("search-parallelism", 1, "speculative probe width W of the MD search: up to W frontier probes in flight per request (1 = sequential; raise against high-latency upstreams)")
		maxSessions  = flag.Int("max-sessions", 0, "max in-flight sessions across all namespaces before requests are shed with 429 (0 = unlimited; a batch of N counts N)")
		clientBudget = flag.Int64("client-budget", 0, "upstream queries each client (X-Client-ID header) may cost per budget window (0 = unmetered)")
		budgetWindow = flag.Duration("client-budget-window", time.Minute, "length of the per-client budget window")
		acquireOn    = flag.Bool("acquire", false, "proactively acquire knowledge for hot query windows from idle capacity (background, always yields to user traffic)")
		acquireWt    = flag.Int("acquire-weight", 1, "admission weight one background acquisition holds (only with -acquire)")
		acquireIvl   = flag.Duration("acquire-interval", time.Second, "how often the background acquirer looks for idle capacity (only with -acquire)")
		acquireIdle  = flag.Duration("acquire-idle", 0, "user-traffic quiet period before acquisition may start (0 = 2x -acquire-interval)")
		sentinelIvl  = flag.Duration("sentinel-interval", 0, "period of the per-namespace sentinel drift check: a tiny fixed probe set whose changed answers bump the knowledge epoch (0 = off)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "launch a hedged second attempt for a remote probe not answered within this duration (0 = off)")
		probeRetries = flag.Int("probe-retries", 0, "extra attempts per remote probe before it fails (0 = default 2, negative = none)")
		maxBody      = flag.Int64("max-body-bytes", 1<<20, "request body size limit in bytes")
		streamWrite  = flag.Duration("stream-write-timeout", 30*time.Second, "per-event write deadline on /v1/rerank/stream (stalled readers are disconnected)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	)
	flag.Parse()

	if len(upstreams) == 0 && *name == "" {
		fmt.Fprintln(os.Stderr, "rerankd: need at least one -upstream URL or a -dataset name")
		os.Exit(2)
	}
	hint := *sizeHint
	if hint == 0 {
		hint = *n
	}
	srv := service.NewFederatedServer(service.Options{
		Core: core.Options{
			N:                     hint,
			ProbeCacheSize:        *cache,
			DisableCoalescing:     *noCoal,
			SearchParallelism:     *width,
			MaxConcurrentSessions: *maxSessions,
		},
		MaxBodyBytes:       *maxBody,
		ClientBudget:       *clientBudget,
		ClientBudgetWindow: *budgetWindow,
		StreamWriteTimeout: *streamWrite,
		Acquire: service.AcquireOptions{
			Enabled:   *acquireOn,
			Weight:    *acquireWt,
			Interval:  *acquireIvl,
			IdleAfter: *acquireIdle,
		},
		Sentinel: service.SentinelOptions{
			Enabled:  *sentinelIvl > 0,
			Interval: *sentinelIvl,
		},
		Guard: service.GuardConfig{
			Retries:    *probeRetries,
			HedgeAfter: *hedgeAfter,
		},
	})
	for _, cfg := range upstreams {
		cfg.N = hint
		info, err := srv.RegisterUpstream(cfg)
		if err != nil {
			log.Fatalf("rerankd: %v", err)
		}
		role := ""
		if info.Default {
			role = ", default"
		}
		log.Printf("rerankd: upstream %s = %s (k=%d, %d attributes%s)",
			cfg.Name, cfg.URL, info.Schema.K, len(info.Schema.Attrs), role)
	}
	if *name != "" {
		var ds *dataset.Dataset
		switch *name {
		case "dot":
			ds = dataset.DOT(*seed, *n)
		case "bluenile":
			ds = dataset.BlueNile(*seed, *n)
		case "yahooautos":
			ds = dataset.YahooAutos(*seed, *n)
		default:
			fmt.Fprintf(os.Stderr, "rerankd: unknown dataset %q\n", *name)
			os.Exit(2)
		}
		db := ds.DB()
		// The dataset namespace carries the dataset's name unless it is the
		// only upstream, in which case it is the default namespace.
		nsName := service.DefaultUpstream
		if len(upstreams) > 0 {
			nsName = strings.ToLower(ds.Name)
		}
		if _, err := srv.RegisterUpstreamDB(service.UpstreamConfig{Name: nsName, N: *n}, db); err != nil {
			log.Fatalf("rerankd: %v", err)
		}
		log.Printf("rerankd: in-process %s as namespace %q (n=%d, k=%d)", ds.Name, nsName, *n, db.K())
	}
	log.Printf("rerankd: search parallelism %d (speculative probe width per request)", *width)
	if *maxSessions > 0 {
		log.Printf("rerankd: admission bound %d in-flight sessions", *maxSessions)
	}
	if *clientBudget > 0 {
		log.Printf("rerankd: per-client budget %d upstream queries / %s", *clientBudget, *budgetWindow)
	}
	if *acquireOn {
		log.Printf("rerankd: background acquisition on (interval %s, weight %d)", *acquireIvl, *acquireWt)
	}
	if *sentinelIvl > 0 {
		log.Printf("rerankd: sentinel drift detection on (interval %s)", *sentinelIvl)
	}
	if *hedgeAfter > 0 {
		log.Printf("rerankd: hedged remote probes after %s", *hedgeAfter)
	}
	// Persistence boot order: replay each namespace's committed knowledge
	// first, then import the -state snapshot on top. A snapshot loaded after
	// AttachPersistence flows through the recording hooks, so its contents
	// are committed to the data dir by the next checkpoint.
	if *dataDir != "" {
		if err := srv.OpenDataDir(*dataDir, service.PersistConfig{
			CheckpointInterval: *ckptInterval,
			Logf:               func(format string, args ...any) { log.Printf("rerankd: "+format, args...) },
		}); err != nil {
			log.Fatalf("rerankd: %v", err)
		}
		ps, _ := srv.PersistStats()
		if ps.Store.ReplayedDeltas > 0 {
			st := srv.Stats()
			log.Printf("rerankd: warm start from data dir %s (%d committed deltas replayed: %d history tuples, %d cached probe answers, %d MD dense regions; checkpoint interval %s)",
				*dataDir, ps.Store.ReplayedDeltas, st.HistoryTuples, st.ProbeCacheEntries, st.MDDenseRegions, *ckptInterval)
		} else {
			log.Printf("rerankd: data dir %s opened cold (checkpoint interval %s)", *dataDir, *ckptInterval)
		}
	}
	if *state != "" {
		warm, err := srv.LoadStateFile(*state, func(format string, args ...any) {
			log.Printf("rerankd: "+format, args...)
		})
		if err != nil {
			log.Fatalf("rerankd: load state: %v", err)
		}
		if warm {
			st := srv.Stats()
			log.Printf("rerankd: warm start from %s (%d history tuples, %d cached probe answers, %d MD dense regions)",
				*state, st.HistoryTuples, st.ProbeCacheEntries, st.MDDenseRegions)
		}
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slowloris protection: a client gets 5s to finish its headers
		// and idle keep-alive connections are reaped. WriteTimeout stays
		// 0 because /v1/rerank/stream responses legitimately run as long
		// as the search does; per-request work is bounded by admission
		// control instead.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       1 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful drain: on SIGTERM/SIGINT stop admitting (healthz goes 503 so
	// load balancers deregister), let in-flight requests finish, then
	// snapshot the engine's knowledge so the restart is warm.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() {
		log.Printf("rerankd: listening on %s", *addr)
		serveErr <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		// Bind failure or another fatal serve error before any signal.
		log.Fatalf("rerankd: serve: %v", err)
	case s := <-sig:
		log.Printf("rerankd: %s received, draining (timeout %s)", s, *drainTimeout)
	}
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("rerankd: drain incomplete: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("rerankd: serve: %v", err)
	}
	if *dataDir != "" {
		// Final checkpoint: commit everything learned since the last
		// background checkpoint, then close every namespace's store.
		if err := srv.ClosePersistence(); err != nil {
			log.Printf("rerankd: final checkpoint: %v", err)
		} else {
			ps, _ := srv.PersistStats()
			log.Printf("rerankd: data dir %s finalized (%d checkpoints this run, journal seq %d)",
				*dataDir, ps.Store.Checkpoints, ps.Store.Seq)
		}
	}
	if *state != "" {
		if err := saveState(srv, *state); err != nil {
			log.Fatalf("rerankd: save state: %v", err)
		}
		st := srv.Stats()
		log.Printf("rerankd: state saved to %s (%d history tuples, %d cached probe answers, %d MD dense regions in %d grid buckets)",
			*state, st.HistoryTuples, st.ProbeCacheEntries, st.MDDenseRegions, st.DenseMDBuckets)
	}
	log.Printf("rerankd: drained %d single / %d batch / %d stream requests served; bye",
		srv.Stats().Requests, srv.Stats().BatchRequests, srv.Stats().StreamRequests)
}

// saveState writes the snapshot atomically AND durably: temp file + fsync +
// rename + parent-dir fsync, so a crash mid-save never clobbers the previous
// good snapshot and a crash right after the save never loses the new one.
func saveState(srv *service.Server, path string) error {
	return segment.WriteFileAtomic(path, func(f *os.File) error {
		return srv.SaveState(f)
	})
}
