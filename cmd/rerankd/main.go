// Command rerankd runs the query reranking service: a third-party HTTP
// daemon that answers user queries under arbitrary monotone ranking
// functions using nothing but an upstream top-k search interface.
//
// The upstream can be a remote hiddendb instance (-upstream URL) or an
// in-process synthetic dataset (-dataset, for demos without a second
// process).
//
// Usage:
//
//	rerankd -upstream http://localhost:8081 -addr :8080
//	rerankd -dataset bluenile -n 20000 -addr :8080
//
// Then:
//
//	curl -s localhost:8080/v1/rerank -d '{
//	  "ranking": {"kind":"ratio","attrs":["Price","Carat"]},
//	  "filters": {"Shape":"Round"},
//	  "h": 5}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hidden"
	"repro/internal/service"
)

func main() {
	var (
		upstream = flag.String("upstream", "", "URL of the upstream hiddendb search endpoint")
		name     = flag.String("dataset", "", "in-process dataset instead of -upstream: dot, bluenile, yahooautos")
		n        = flag.Int("n", 20000, "tuples for the in-process dataset")
		seed     = flag.Int64("seed", 160205100, "generator seed for the in-process dataset")
		sizeHint = flag.Int("size-hint", 0, "upstream size estimate for dense-index thresholds (0 = n)")
		addr     = flag.String("addr", ":8080", "listen address")
		state    = flag.String("state", "", "snapshot file: loaded at startup, saved on SIGINT/SIGTERM")
		cache    = flag.Int("probe-cache", 0, "probe-result LRU entries (0 = default 1024, negative disables the cache)")
		noCoal   = flag.Bool("no-coalesce", false, "disable probe coalescing (for upstreams whose corpus changes mid-run)")
		width    = flag.Int("search-parallelism", 1, "speculative probe width W of the MD search: up to W frontier probes in flight per request (1 = sequential; raise against high-latency upstreams)")
	)
	flag.Parse()

	var db hidden.Database
	switch {
	case *upstream != "":
		rdb, err := service.DialRemote(*upstream, nil)
		if err != nil {
			log.Fatalf("rerankd: %v", err)
		}
		db = rdb
		log.Printf("rerankd: upstream %s (k=%d, %d attributes)", *upstream, rdb.K(), rdb.Schema().Len())
	case *name != "":
		var ds *dataset.Dataset
		switch *name {
		case "dot":
			ds = dataset.DOT(*seed, *n)
		case "bluenile":
			ds = dataset.BlueNile(*seed, *n)
		case "yahooautos":
			ds = dataset.YahooAutos(*seed, *n)
		default:
			fmt.Fprintf(os.Stderr, "rerankd: unknown dataset %q\n", *name)
			os.Exit(2)
		}
		db = ds.DB()
		log.Printf("rerankd: in-process %s (n=%d, k=%d)", ds.Name, *n, db.K())
	default:
		fmt.Fprintln(os.Stderr, "rerankd: need -upstream URL or -dataset name")
		os.Exit(2)
	}
	hint := *sizeHint
	if hint == 0 {
		hint = *n
	}
	srv := service.NewServerWith(db, core.Options{
		N:                 hint,
		ProbeCacheSize:    *cache,
		DisableCoalescing: *noCoal,
		SearchParallelism: *width,
	})
	log.Printf("rerankd: search parallelism %d (speculative probe width per request)", *width)
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			if err := srv.LoadState(f); err != nil {
				log.Fatalf("rerankd: load state: %v", err)
			}
			f.Close()
			st := srv.Stats()
			log.Printf("rerankd: warm start from %s (%d history tuples, %d cached probe answers, %d MD dense regions)",
				*state, st.HistoryTuples, st.ProbeCacheEntries, st.MDDenseRegions)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			f, err := os.Create(*state)
			if err == nil {
				err = srv.SaveState(f)
				f.Close()
			}
			if err != nil {
				log.Printf("rerankd: save state: %v", err)
			} else {
				st := srv.Stats()
				log.Printf("rerankd: state saved to %s (%d MD dense regions in %d grid buckets; %d speculative probes, %d wasted)",
					*state, st.MDDenseRegions, st.DenseMDBuckets, st.SpecProbesIssued, st.SpecProbesWasted)
			}
			os.Exit(0)
		}()
	}
	log.Printf("rerankd: listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
