// Workload-generation tests: the request stream must be a pure function of
// the seed, traces must round-trip through the record file format, and a
// replay must issue exactly the recorded operations no matter how many
// workers consume it. (The last pins the fix for a bug where per-worker RNG
// seeding made the request stream depend on -clients.)

package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/service"
)

func testOrdinals() []service.AttrSpec {
	return []service.AttrSpec{
		{Name: "A0", Kind: "ordinal", Min: 0, Max: 100},
		{Name: "A1", Kind: "ordinal", Min: -50, Max: 50},
		{Name: "A2", Kind: "ordinal", Min: 10, Max: 20},
	}
}

func testWorkload(t *testing.T, seed int64) *workload {
	t.Helper()
	mix, err := parseMix("1d=4,md=3,batch=2,stream=1")
	if err != nil {
		t.Fatal(err)
	}
	ords := testOrdinals()
	return newWorkload(seed, 1.2, false, mix, buildWindows(ords, 32), ords, 8, 4)
}

func genSpecs(g *workload, n int) []opSpec {
	out := make([]opSpec, n)
	for i := range out {
		out[i], _ = g.next()
	}
	return out
}

// TestWorkloadDeterministic: two generators with the same seed emit the
// same operation sequence; a different seed diverges.
func TestWorkloadDeterministic(t *testing.T) {
	a := genSpecs(testWorkload(t, 7), 200)
	b := genSpecs(testWorkload(t, 7), 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different operation sequences")
	}
	c := genSpecs(testWorkload(t, 8), 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical operation sequences")
	}
}

// TestWorkloadShapes sanity-checks the generated operations: batch specs
// carry batchSize requests, every request stays inside its universe window,
// and the Zipf mode (window 0) dominates.
func TestWorkloadShapes(t *testing.T) {
	g := testWorkload(t, 1)
	hits := map[int]int64{}
	for _, s := range genSpecs(g, 2000) {
		want := 1
		if s.Kind == opBatch {
			want = 4
		}
		if len(s.Reqs) != want || len(s.Windows) != want {
			t.Fatalf("%s spec carries %d reqs / %d windows, want %d", s.Kind, len(s.Reqs), len(s.Windows), want)
		}
		for i, req := range s.Reqs {
			w := g.universe[s.Windows[i]]
			if len(req.Ranges) != 1 || req.Ranges[0].Attr != w.Attr ||
				*req.Ranges[0].Min != w.Lo || *req.Ranges[0].Max != w.Hi {
				t.Fatalf("request range does not match universe window %d", s.Windows[i])
			}
			if req.H < 1 || req.H > 8 {
				t.Fatalf("request h = %d outside [1,8]", req.H)
			}
			hits[s.Windows[i]]++
		}
	}
	var total, top int64
	for _, n := range hits {
		total += n
	}
	top = hits[0]
	for w, n := range hits {
		if n > top {
			t.Fatalf("window %d (%d hits) beat the Zipf mode window 0 (%d hits)", w, n, top)
		}
	}
	if float64(top)/float64(total) < 0.2 {
		t.Fatalf("Zipf mode drew only %d/%d hits; the distribution is not skewed", top, total)
	}
}

// TestTraceRoundTrip: specs written through the recording path decode back
// identically via loadTrace.
func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := bufio.NewWriter(f)
	g := testWorkload(t, 3)
	g.rec = json.NewEncoder(buf)
	want := genSpecs(g, 150)
	if err := buf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("trace did not round-trip through the record file")
	}
}

// TestTraceReplayWorkerCountIndependent: however many workers drain a
// traceSource, the union of consumed operations is exactly the trace, each
// spec exactly once — the property that makes -trace-replay bit-identical
// across -clients values.
func TestTraceReplayWorkerCountIndependent(t *testing.T) {
	trace := genSpecs(testWorkload(t, 11), 500)
	key := func(s opSpec) string {
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	want := map[string]int{}
	for _, s := range trace {
		want[key(s)]++
	}

	for _, workers := range []int{1, 3, 8} {
		src := &traceSource{specs: trace}
		var mu sync.Mutex
		got := map[string]int{}
		var n int
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s, ok := src.next()
					if !ok {
						return
					}
					k := key(s)
					mu.Lock()
					got[k]++
					n++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if n != len(trace) {
			t.Fatalf("%d workers consumed %d operations, want %d", workers, n, len(trace))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d workers issued a different operation multiset than the trace", workers)
		}
	}
}
