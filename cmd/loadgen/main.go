// Command loadgen is a closed-loop load generator for the reranking
// service: the tool both humans and CI use to pin rerankd's serving
// behavior under concurrent traffic.
//
// Each of -clients workers runs a closed loop against -url for -duration:
// pull the next operation from a single shared workload sequence (so the
// request stream is a function of -seed alone, never of worker count),
// issue it, and record the outcome. Operations are drawn from the weighted
// -mix (1d = single-attribute rerank, md = two-attribute linear rerank,
// batch = one POST /v1/rerank/batch of -batch-size sub-requests, stream =
// POST /v1/rerank/stream drained to the final event). Requests shed by
// admission control (429/503) count as "shed", not errors — backpressure is
// correct behavior under overload, and the shed rate is part of the report.
//
// Every request targets one window out of a discrete universe of -windows
// contiguous range windows tiled across the schema's ordinal attributes.
// Window popularity follows a Zipfian distribution with exponent -zipf-s —
// the skewed access pattern hidden-database front ends actually see, and
// the regime where background knowledge acquisition pays off — or a uniform
// distribution with -uniform. The report includes per-window hit skew
// (top-1/top-3 share and the hottest windows).
//
// -trace-record writes the generated operation sequence as JSON lines;
// -trace-replay plays such a file back bit-identically: workers consume the
// recorded operations sequentially from a shared cursor, so two replays of
// the same trace issue exactly the same requests regardless of -clients.
//
// The report prints per-kind and total counts, throughput, p50/p95/p99
// latency, shed rate, and upstream queries per request (the paper's cost
// measure, straight from the service's ledgers); streams additionally
// report time-to-first-tuple. -report writes the same numbers as JSON (the
// BENCH_e2e artifact in CI).
//
// Usage:
//
//	loadgen -url http://localhost:8080 -clients 8 -duration 10s \
//	        -mix "1d=4,md=3,batch=2,stream=1" -zipf-s 1.2 -windows 64 \
//	        -report report.json
//
// Against a federated rerankd, -upstream targets one namespace (its schema,
// its routes); without it the traffic goes to the server's default
// namespace over the legacy un-namespaced routes.
//
// Exit status: 0 when every request either succeeded or was shed; 1 when
// hard errors occurred (or the optional -min-ops floor was missed).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

type opKind string

const (
	op1D     opKind = "1d"
	opMD     opKind = "md"
	opBatch  opKind = "batch"
	opStream opKind = "stream"
)

// opSpec is one fully materialized operation: every random choice (kind,
// windows, ranking, h, batch composition) is already made, so executing a
// spec needs no RNG and a recorded spec replays bit-identically. Windows
// holds the universe index behind each request, for skew accounting.
type opSpec struct {
	Kind    opKind                  `json:"kind"`
	Reqs    []service.RerankRequest `json:"reqs"`
	Windows []int                   `json:"windows"`
}

// specSource yields the next operation to issue. Both implementations are
// safe for concurrent workers, and neither depends on which worker calls:
// the request stream is worker-count-independent by construction.
type specSource interface {
	next() (opSpec, bool)
}

// window is one element of the discrete query-window universe: a contiguous
// range over one ordinal attribute.
type window struct {
	Attr   string
	Lo, Hi float64
}

// buildWindows tiles n windows across the ordinal attributes: window i
// covers slot i/A of attribute i%A's domain, the domain split into equal
// slots. Window 0 is the Zipf mode — the hottest window of the run.
func buildWindows(ordinals []service.AttrSpec, n int) []window {
	a := len(ordinals)
	slots := (n + a - 1) / a
	out := make([]window, n)
	for i := range out {
		at := ordinals[i%a]
		width := (at.Max - at.Min) / float64(slots)
		lo := at.Min + float64(i/a)*width
		hi := lo + width
		if hi > at.Max {
			hi = at.Max
		}
		out[i] = window{Attr: at.Name, Lo: lo, Hi: hi}
	}
	return out
}

// workload generates the shared operation sequence. One mutex-guarded RNG
// drives every choice, so the sequence is a pure function of the seed:
// workers pulling from it concurrently interleave execution, not
// generation. (An earlier version seeded an RNG per worker, which made the
// request stream — and any recorded trace — depend on -clients.)
type workload struct {
	mu        sync.Mutex
	rng       *rand.Rand
	zipf      *rand.Zipf // nil in -uniform mode
	mix       *weightedMix
	universe  []window
	ordinals  []service.AttrSpec
	h         int
	batchSize int
	rec       *json.Encoder // non-nil when -trace-record is set
}

func newWorkload(seed int64, zipfS float64, uniform bool, mix *weightedMix,
	universe []window, ordinals []service.AttrSpec, h, batchSize int) *workload {
	g := &workload{
		rng:      rand.New(rand.NewSource(seed)),
		mix:      mix,
		universe: universe,
		ordinals: ordinals, h: h, batchSize: batchSize,
	}
	if !uniform {
		g.zipf = rand.NewZipf(g.rng, zipfS, 1, uint64(len(universe)-1))
	}
	return g
}

func (g *workload) next() (opSpec, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	kind := g.mix.pick(g.rng)
	spec := opSpec{Kind: kind}
	n := 1
	if kind == opBatch {
		n = g.batchSize
	}
	for i := 0; i < n; i++ {
		rk := kind
		switch kind {
		case opBatch:
			rk = op1D
			if g.rng.Intn(2) == 0 {
				rk = opMD
			}
		case opStream:
			rk = opMD
		}
		wi := g.pickWindow()
		spec.Reqs = append(spec.Reqs, g.windowRequest(rk, wi))
		spec.Windows = append(spec.Windows, wi)
	}
	// Recording happens under the generation lock so the trace order IS the
	// generation order.
	if g.rec != nil {
		if err := g.rec.Encode(spec); err != nil {
			log.Fatalf("loadgen: record trace: %v", err)
		}
	}
	return spec, true
}

func (g *workload) pickWindow() int {
	if g.zipf == nil {
		return g.rng.Intn(len(g.universe))
	}
	return int(g.zipf.Uint64())
}

// windowRequest builds one rerank request over the given universe window.
func (g *workload) windowRequest(kind opKind, wi int) service.RerankRequest {
	w := g.universe[wi]
	req := service.RerankRequest{H: 1 + g.rng.Intn(g.h)}
	if kind == op1D {
		req.Ranking = service.RankingSpec{Kind: "single", Attrs: []string{w.Attr}, Desc: g.rng.Intn(2) == 0}
	} else {
		b := g.ordinals[g.rng.Intn(len(g.ordinals))]
		for b.Name == w.Attr {
			b = g.ordinals[g.rng.Intn(len(g.ordinals))]
		}
		req.Ranking = service.RankingSpec{
			Kind: "linear", Attrs: []string{w.Attr, b.Name}, Weights: []float64{1, 1},
		}
	}
	lo, hi := w.Lo, w.Hi
	req.Ranges = []service.RangeSpec{{Attr: w.Attr, Min: &lo, Max: &hi}}
	return req
}

// traceSource replays a recorded trace: workers consume specs sequentially
// from a shared cursor, each spec exactly once, in trace order. The stream
// ends when the trace does.
type traceSource struct {
	specs []opSpec
	idx   atomic.Int64
}

func (t *traceSource) next() (opSpec, bool) {
	i := t.idx.Add(1) - 1
	if i >= int64(len(t.specs)) {
		return opSpec{}, false
	}
	return t.specs[i], true
}

// loadTrace reads a -trace-record file back into memory.
func loadTrace(path string) ([]opSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var specs []opSpec
	dec := json.NewDecoder(bufio.NewReader(f))
	for dec.More() {
		var s opSpec
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("trace %s, spec %d: %w", path, len(specs), err)
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("trace %s holds no operations", path)
	}
	return specs, nil
}

// sample is one completed operation.
type sample struct {
	kind      opKind
	latency   time.Duration
	firstTup  time.Duration // streams only; 0 when no tuple arrived
	upstreamQ int64
	shed      bool
	err       bool
	windows   []int
}

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080", "rerankd base URL")
		upstream    = flag.String("upstream", "", "upstream namespace to target ('' = the server's default namespace via the legacy routes)")
		clients     = flag.Int("clients", 8, "concurrent closed-loop workers")
		duration    = flag.Duration("duration", 10*time.Second, "run length")
		mixSpec     = flag.String("mix", "1d=4,md=3,batch=2,stream=1", "weighted operation mix (kind=weight,...)")
		h           = flag.Int("h", 8, "answers requested per rerank")
		batchSize   = flag.Int("batch-size", 4, "sub-requests per batch operation")
		seed        = flag.Int64("seed", 1, "workload seed")
		zipfS       = flag.Float64("zipf-s", 1.2, "Zipf exponent of the window popularity distribution (must be > 1)")
		windowsN    = flag.Int("windows", 64, "size of the discrete query-window universe")
		uniform     = flag.Bool("uniform", false, "pick windows uniformly instead of Zipf")
		traceRecord = flag.String("trace-record", "", "record the generated operation sequence to this file (JSON lines)")
		traceReplay = flag.String("trace-replay", "", "replay a recorded trace instead of generating (ignores -mix/-zipf-s/-windows/-h/-batch-size/-seed)")
		report      = flag.String("report", "", "write the JSON report to this file")
		minOps      = flag.Int64("min-ops", 0, "fail unless at least this many operations completed")
	)
	flag.Parse()

	if *traceReplay != "" && *traceRecord != "" {
		log.Fatal("loadgen: -trace-record and -trace-replay are mutually exclusive")
	}
	schema, err := service.NewClientWith(*url, service.WithUpstream(*upstream)).Schema()
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	ordinals := ordinalAttrs(schema)
	if len(ordinals) < 2 {
		log.Fatalf("loadgen: schema exposes %d ordinal attributes, need ≥ 2", len(ordinals))
	}

	var src specSource
	var recFile *os.File
	var recBuf *bufio.Writer
	reportZipf := 0.0
	if *traceReplay != "" {
		specs, err := loadTrace(*traceReplay)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		src = &traceSource{specs: specs}
		log.Printf("loadgen: replaying %d recorded operations from %s", len(specs), *traceReplay)
	} else {
		mix, err := parseMix(*mixSpec)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		if *windowsN < 1 {
			log.Fatalf("loadgen: -windows %d, need ≥ 1", *windowsN)
		}
		if !*uniform && *zipfS <= 1 {
			log.Fatalf("loadgen: -zipf-s %v, need > 1 (or -uniform)", *zipfS)
		}
		gen := newWorkload(*seed, *zipfS, *uniform, mix, buildWindows(ordinals, *windowsN), ordinals, *h, *batchSize)
		if !*uniform {
			reportZipf = *zipfS
		}
		if *traceRecord != "" {
			recFile, err = os.Create(*traceRecord)
			if err != nil {
				log.Fatalf("loadgen: %v", err)
			}
			recBuf = bufio.NewWriter(recFile)
			gen.rec = json.NewEncoder(recBuf)
		}
		src = gen
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := service.NewClientWith(*url,
				service.WithUpstream(*upstream),
				service.WithTimeout(2*time.Minute),
				service.WithClientID(fmt.Sprintf("loadgen-%d", w)))
			var local []sample
			for time.Now().Before(deadline) {
				spec, ok := src.next()
				if !ok {
					break // trace exhausted
				}
				local = append(local, runOp(client, spec))
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if recBuf != nil {
		if err := recBuf.Flush(); err != nil {
			log.Fatalf("loadgen: flush trace: %v", err)
		}
		if err := recFile.Close(); err != nil {
			log.Fatalf("loadgen: close trace: %v", err)
		}
		log.Printf("loadgen: trace recorded to %s", *traceRecord)
	}

	rep := buildReport(samples, elapsed, *clients, *mixSpec)
	rep.Upstream = *upstream
	rep.ZipfS = reportZipf
	if *traceReplay == "" {
		rep.Windows = *windowsN
	}
	printReport(rep)
	if *report != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadgen: marshal report: %v", err)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*report, raw, 0o644); err != nil {
			log.Fatalf("loadgen: write report: %v", err)
		}
	}
	if rep.Total.Errors > 0 {
		log.Fatalf("loadgen: %d hard errors", rep.Total.Errors)
	}
	if rep.Total.Count < *minOps {
		log.Fatalf("loadgen: only %d operations completed, floor is %d", rep.Total.Count, *minOps)
	}
}

// runOp executes one materialized operation and classifies the result.
func runOp(client *service.Client, spec opSpec) sample {
	s := sample{kind: spec.Kind, windows: spec.Windows}
	begin := time.Now()
	var err error
	switch spec.Kind {
	case op1D, opMD:
		var resp *service.RerankResponse
		resp, err = client.Rerank(spec.Reqs[0])
		if resp != nil {
			s.upstreamQ = resp.QueriesIssued
		}
	case opBatch:
		var resp *service.BatchResponse
		resp, err = client.RerankBatch(service.BatchRequest{Requests: spec.Reqs})
		if resp != nil {
			s.upstreamQ = resp.QueriesIssued
		}
	case opStream:
		var final *service.StreamEvent
		final, err = client.RerankStream(spec.Reqs[0], func(ev service.StreamEvent) bool {
			if ev.Tuple != nil && s.firstTup == 0 {
				s.firstTup = time.Since(begin)
			}
			return true
		})
		if final != nil {
			s.upstreamQ = final.QueriesIssued
		}
	}
	s.latency = time.Since(begin)
	if err != nil {
		var se *service.StatusError
		if errors.As(err, &se) &&
			(se.Status == http.StatusTooManyRequests || se.Status == http.StatusServiceUnavailable) {
			s.shed = true
		} else {
			s.err = true
			log.Printf("loadgen: %s: %v", spec.Kind, err)
		}
	}
	return s
}

// weightedMix picks operation kinds proportionally to their weights.
type weightedMix struct {
	kinds   []opKind
	weights []int
	total   int
}

func parseMix(spec string) (*weightedMix, error) {
	m := &weightedMix{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		kind := opKind(kv[0])
		switch kind {
		case op1D, opMD, opBatch, opStream:
		default:
			return nil, fmt.Errorf("unknown mix kind %q (want 1d, md, batch, stream)", kv[0])
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", kv[1])
		}
		if w == 0 {
			continue
		}
		m.kinds = append(m.kinds, kind)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("mix %q selects nothing", spec)
	}
	return m, nil
}

func (m *weightedMix) pick(rng *rand.Rand) opKind {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.kinds[i]
		}
		n -= w
	}
	return m.kinds[len(m.kinds)-1]
}

func ordinalAttrs(sr *service.SchemaResponse) []service.AttrSpec {
	var out []service.AttrSpec
	for _, a := range sr.Attrs {
		if a.Kind == "ordinal" && a.Max > a.Min {
			out = append(out, a)
		}
	}
	return out
}

// OpStats aggregates one operation kind (or the total row) for the report.
type OpStats struct {
	Count     int64   `json:"count"`
	OK        int64   `json:"ok"`
	Shed      int64   `json:"shed"` // 429/503 admission rejections
	Errors    int64   `json:"errors"`
	ShedRate  float64 `json:"shedRate"`
	OpsPerSec float64 `json:"opsPerSec"`
	P50Ms     float64 `json:"p50Ms"`
	P95Ms     float64 `json:"p95Ms"`
	P99Ms     float64 `json:"p99Ms"`
	// UpstreamQueries is the summed per-request cost ledger;
	// UpstreamPerOp averages it over successful operations.
	UpstreamQueries int64   `json:"upstreamQueries"`
	UpstreamPerOp   float64 `json:"upstreamPerOp"`
	// FirstTupleP50Ms is the median time to the first streamed tuple
	// (streams only).
	FirstTupleP50Ms float64 `json:"firstTupleP50Ms,omitempty"`
}

// WindowHit is one window's slice of the issued requests.
type WindowHit struct {
	Window int     `json:"window"`
	Hits   int64   `json:"hits"`
	Share  float64 `json:"share"`
}

// WindowSkew summarizes how concentrated the run's window accesses were —
// the knob that decides whether background acquisition has anything hot to
// warm.
type WindowSkew struct {
	// TotalHits counts every issued request (batch sub-requests included).
	TotalHits int64 `json:"totalHits"`
	// DistinctWindows is how many universe windows were touched at all.
	DistinctWindows int `json:"distinctWindows"`
	// Top1Share / Top3Share are the hit fractions of the hottest one and
	// three windows.
	Top1Share float64 `json:"top1Share"`
	Top3Share float64 `json:"top3Share"`
	// Hot lists the five hottest windows.
	Hot []WindowHit `json:"hot"`
}

// Report is the loadgen JSON output.
type Report struct {
	Clients int    `json:"clients"`
	Mix     string `json:"mix"`
	// Upstream is the namespace the run targeted ("" = the default).
	Upstream string `json:"upstream,omitempty"`
	// Windows and ZipfS echo the workload shape (both 0 on trace replay;
	// ZipfS 0 also in -uniform mode).
	Windows         int                `json:"windows,omitempty"`
	ZipfS           float64            `json:"zipfS,omitempty"`
	DurationSeconds float64            `json:"durationSeconds"`
	Total           OpStats            `json:"total"`
	Skew            *WindowSkew        `json:"windowSkew,omitempty"`
	PerKind         map[string]OpStats `json:"perKind"`
}

func buildReport(samples []sample, elapsed time.Duration, clients int, mix string) *Report {
	rep := &Report{
		Clients:         clients,
		Mix:             mix,
		DurationSeconds: elapsed.Seconds(),
		PerKind:         map[string]OpStats{},
	}
	byKind := map[opKind][]sample{}
	for _, s := range samples {
		byKind[s.kind] = append(byKind[s.kind], s)
	}
	rep.Total = aggregate(samples, elapsed)
	for kind, ss := range byKind {
		rep.PerKind[string(kind)] = aggregate(ss, elapsed)
	}
	rep.Skew = windowSkew(samples)
	return rep
}

// windowSkew tallies per-window hits across every issued request.
func windowSkew(samples []sample) *WindowSkew {
	hits := map[int]int64{}
	var total int64
	for _, s := range samples {
		for _, w := range s.windows {
			hits[w]++
			total++
		}
	}
	if total == 0 {
		return nil
	}
	all := make([]WindowHit, 0, len(hits))
	for w, n := range hits {
		all = append(all, WindowHit{Window: w, Hits: n, Share: float64(n) / float64(total)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Hits != all[j].Hits {
			return all[i].Hits > all[j].Hits
		}
		return all[i].Window < all[j].Window
	})
	sk := &WindowSkew{TotalHits: total, DistinctWindows: len(all)}
	for i, h := range all {
		if i < 1 {
			sk.Top1Share += h.Share
		}
		if i < 3 {
			sk.Top3Share += h.Share
		}
		if i < 5 {
			sk.Hot = append(sk.Hot, h)
		}
	}
	return sk
}

func aggregate(ss []sample, elapsed time.Duration) OpStats {
	var st OpStats
	var lats, firsts []float64
	for _, s := range ss {
		st.Count++
		switch {
		case s.err:
			st.Errors++
		case s.shed:
			st.Shed++
		default:
			st.OK++
			st.UpstreamQueries += s.upstreamQ
			lats = append(lats, float64(s.latency)/float64(time.Millisecond))
			if s.firstTup > 0 {
				firsts = append(firsts, float64(s.firstTup)/float64(time.Millisecond))
			}
		}
	}
	if st.Count > 0 {
		st.ShedRate = float64(st.Shed) / float64(st.Count)
	}
	if st.OK > 0 {
		st.UpstreamPerOp = float64(st.UpstreamQueries) / float64(st.OK)
	}
	if elapsed > 0 {
		st.OpsPerSec = float64(st.Count) / elapsed.Seconds()
	}
	st.P50Ms, st.P95Ms, st.P99Ms = percentile(lats, 50), percentile(lats, 95), percentile(lats, 99)
	st.FirstTupleP50Ms = percentile(firsts, 50)
	return st
}

func percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	idx := int(p / 100 * float64(len(v)-1))
	return v[idx]
}

func printReport(rep *Report) {
	fmt.Printf("loadgen: %d clients, mix %s, %.1fs\n", rep.Clients, rep.Mix, rep.DurationSeconds)
	fmt.Printf("%-8s %8s %8s %6s %6s %9s %9s %9s %9s %11s\n",
		"kind", "ops", "ops/s", "shed", "errs", "p50 ms", "p95 ms", "p99 ms", "firstT ms", "upstrQ/op")
	row := func(name string, st OpStats) {
		first := "-"
		if st.FirstTupleP50Ms > 0 {
			first = fmt.Sprintf("%.1f", st.FirstTupleP50Ms)
		}
		fmt.Printf("%-8s %8d %8.1f %6d %6d %9.1f %9.1f %9.1f %9s %11.1f\n",
			name, st.Count, st.OpsPerSec, st.Shed, st.Errors,
			st.P50Ms, st.P95Ms, st.P99Ms, first, st.UpstreamPerOp)
	}
	kinds := make([]string, 0, len(rep.PerKind))
	for k := range rep.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		row(k, rep.PerKind[k])
	}
	row("total", rep.Total)
	if sk := rep.Skew; sk != nil {
		fmt.Printf("windows: %d distinct, top-1 %.1f%% / top-3 %.1f%% of %d hits\n",
			sk.DistinctWindows, sk.Top1Share*100, sk.Top3Share*100, sk.TotalHits)
	}
}
