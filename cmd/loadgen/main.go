// Command loadgen is a closed-loop load generator for the reranking
// service: the tool both humans and CI use to pin rerankd's serving
// behavior under concurrent traffic.
//
// Each of -clients workers runs a closed loop against -url for -duration:
// pick an operation from the weighted -mix (1d = single-attribute rerank,
// md = two-attribute linear rerank, batch = one POST /v1/rerank/batch of
// -batch-size sub-requests, stream = POST /v1/rerank/stream drained to the
// final event), build a randomized request from the service's /v1/schema,
// issue it, and record the outcome. Requests shed by admission control
// (429/503) count as "shed", not errors — backpressure is correct behavior
// under overload, and the shed rate is part of the report.
//
// The report prints per-kind and total counts, throughput, p50/p95/p99
// latency, shed rate, and upstream queries per request (the paper's cost
// measure, straight from the service's ledgers); streams additionally
// report time-to-first-tuple. -report writes the same numbers as JSON (the
// BENCH_e2e artifact in CI).
//
// Usage:
//
//	loadgen -url http://localhost:8080 -clients 8 -duration 10s \
//	        -mix "1d=4,md=3,batch=2,stream=1" -report report.json
//
// Against a federated rerankd, -upstream targets one namespace (its schema,
// its routes); without it the traffic goes to the server's default
// namespace over the legacy un-namespaced routes.
//
// Exit status: 0 when every request either succeeded or was shed; 1 when
// hard errors occurred (or the optional -min-ops floor was missed).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

type opKind string

const (
	op1D     opKind = "1d"
	opMD     opKind = "md"
	opBatch  opKind = "batch"
	opStream opKind = "stream"
)

// sample is one completed operation.
type sample struct {
	kind      opKind
	latency   time.Duration
	firstTup  time.Duration // streams only; 0 when no tuple arrived
	upstreamQ int64
	shed      bool
	err       bool
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "rerankd base URL")
		upstream  = flag.String("upstream", "", "upstream namespace to target ('' = the server's default namespace via the legacy routes)")
		clients   = flag.Int("clients", 8, "concurrent closed-loop workers")
		duration  = flag.Duration("duration", 10*time.Second, "run length")
		mixSpec   = flag.String("mix", "1d=4,md=3,batch=2,stream=1", "weighted operation mix (kind=weight,...)")
		h         = flag.Int("h", 8, "answers requested per rerank")
		batchSize = flag.Int("batch-size", 4, "sub-requests per batch operation")
		seed      = flag.Int64("seed", 1, "workload seed")
		report    = flag.String("report", "", "write the JSON report to this file")
		minOps    = flag.Int64("min-ops", 0, "fail unless at least this many operations completed")
	)
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	schema, err := service.NewClientWith(*url, service.WithUpstream(*upstream)).Schema()
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	ordinals := ordinalAttrs(schema)
	if len(ordinals) < 2 {
		log.Fatalf("loadgen: schema exposes %d ordinal attributes, need ≥ 2", len(ordinals))
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			client := service.NewClientWith(*url,
				service.WithUpstream(*upstream),
				service.WithTimeout(2*time.Minute),
				service.WithClientID(fmt.Sprintf("loadgen-%d", w)))
			var local []sample
			for time.Now().Before(deadline) {
				local = append(local, runOp(client, rng, mix.pick(rng), ordinals, *h, *batchSize))
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildReport(samples, elapsed, *clients, *mixSpec)
	rep.Upstream = *upstream
	printReport(rep)
	if *report != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadgen: marshal report: %v", err)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*report, raw, 0o644); err != nil {
			log.Fatalf("loadgen: write report: %v", err)
		}
	}
	if rep.Total.Errors > 0 {
		log.Fatalf("loadgen: %d hard errors", rep.Total.Errors)
	}
	if rep.Total.Count < *minOps {
		log.Fatalf("loadgen: only %d operations completed, floor is %d", rep.Total.Count, *minOps)
	}
}

// runOp executes one operation of the given kind and classifies the result.
func runOp(client *service.Client, rng *rand.Rand, kind opKind, ordinals []service.AttrSpec, h, batchSize int) sample {
	s := sample{kind: kind}
	begin := time.Now()
	var err error
	switch kind {
	case op1D, opMD:
		var resp *service.RerankResponse
		resp, err = client.Rerank(randomRequest(rng, kind, ordinals, h))
		if resp != nil {
			s.upstreamQ = resp.QueriesIssued
		}
	case opBatch:
		reqs := make([]service.RerankRequest, batchSize)
		for i := range reqs {
			k := op1D
			if rng.Intn(2) == 0 {
				k = opMD
			}
			reqs[i] = randomRequest(rng, k, ordinals, h)
		}
		var resp *service.BatchResponse
		resp, err = client.RerankBatch(service.BatchRequest{Requests: reqs})
		if resp != nil {
			s.upstreamQ = resp.QueriesIssued
		}
	case opStream:
		var final *service.StreamEvent
		final, err = client.RerankStream(randomRequest(rng, opMD, ordinals, h), func(ev service.StreamEvent) bool {
			if ev.Tuple != nil && s.firstTup == 0 {
				s.firstTup = time.Since(begin)
			}
			return true
		})
		if final != nil {
			s.upstreamQ = final.QueriesIssued
		}
	}
	s.latency = time.Since(begin)
	if err != nil {
		var se *service.StatusError
		if errors.As(err, &se) &&
			(se.Status == http.StatusTooManyRequests || se.Status == http.StatusServiceUnavailable) {
			s.shed = true
		} else {
			s.err = true
			log.Printf("loadgen: %s: %v", kind, err)
		}
	}
	return s
}

// randomRequest builds a rerank request over randomly chosen ranked
// attributes, selecting a random window of the first one's domain so
// workers overlap enough to exercise history and probe coalescing.
func randomRequest(rng *rand.Rand, kind opKind, ordinals []service.AttrSpec, h int) service.RerankRequest {
	a := ordinals[rng.Intn(len(ordinals))]
	req := service.RerankRequest{H: 1 + rng.Intn(h)}
	if kind == op1D {
		req.Ranking = service.RankingSpec{Kind: "single", Attrs: []string{a.Name}, Desc: rng.Intn(2) == 0}
	} else {
		b := a
		for b.Name == a.Name {
			b = ordinals[rng.Intn(len(ordinals))]
		}
		req.Ranking = service.RankingSpec{
			Kind: "linear", Attrs: []string{a.Name, b.Name}, Weights: []float64{1, 1},
		}
	}
	// Range window over a coarse grid (quarters of the domain), so
	// concurrent workers repeat windows and the shared knowledge pays off.
	width := a.Max - a.Min
	if width > 0 {
		q := width / 4
		lo := a.Min + float64(rng.Intn(3))*q
		hi := lo + q + float64(rng.Intn(2))*q
		if hi > a.Max {
			hi = a.Max
		}
		req.Ranges = []service.RangeSpec{{Attr: a.Name, Min: &lo, Max: &hi}}
	}
	return req
}

// weightedMix picks operation kinds proportionally to their weights.
type weightedMix struct {
	kinds   []opKind
	weights []int
	total   int
}

func parseMix(spec string) (*weightedMix, error) {
	m := &weightedMix{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		kind := opKind(kv[0])
		switch kind {
		case op1D, opMD, opBatch, opStream:
		default:
			return nil, fmt.Errorf("unknown mix kind %q (want 1d, md, batch, stream)", kv[0])
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", kv[1])
		}
		if w == 0 {
			continue
		}
		m.kinds = append(m.kinds, kind)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("mix %q selects nothing", spec)
	}
	return m, nil
}

func (m *weightedMix) pick(rng *rand.Rand) opKind {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.kinds[i]
		}
		n -= w
	}
	return m.kinds[len(m.kinds)-1]
}

func ordinalAttrs(sr *service.SchemaResponse) []service.AttrSpec {
	var out []service.AttrSpec
	for _, a := range sr.Attrs {
		if a.Kind == "ordinal" && a.Max > a.Min {
			out = append(out, a)
		}
	}
	return out
}

// OpStats aggregates one operation kind (or the total row) for the report.
type OpStats struct {
	Count     int64   `json:"count"`
	OK        int64   `json:"ok"`
	Shed      int64   `json:"shed"` // 429/503 admission rejections
	Errors    int64   `json:"errors"`
	ShedRate  float64 `json:"shedRate"`
	OpsPerSec float64 `json:"opsPerSec"`
	P50Ms     float64 `json:"p50Ms"`
	P95Ms     float64 `json:"p95Ms"`
	P99Ms     float64 `json:"p99Ms"`
	// UpstreamQueries is the summed per-request cost ledger;
	// UpstreamPerOp averages it over successful operations.
	UpstreamQueries int64   `json:"upstreamQueries"`
	UpstreamPerOp   float64 `json:"upstreamPerOp"`
	// FirstTupleP50Ms is the median time to the first streamed tuple
	// (streams only).
	FirstTupleP50Ms float64 `json:"firstTupleP50Ms,omitempty"`
}

// Report is the loadgen JSON output.
type Report struct {
	Clients int    `json:"clients"`
	Mix     string `json:"mix"`
	// Upstream is the namespace the run targeted ("" = the default).
	Upstream        string             `json:"upstream,omitempty"`
	DurationSeconds float64            `json:"durationSeconds"`
	Total           OpStats            `json:"total"`
	PerKind         map[string]OpStats `json:"perKind"`
}

func buildReport(samples []sample, elapsed time.Duration, clients int, mix string) *Report {
	rep := &Report{
		Clients:         clients,
		Mix:             mix,
		DurationSeconds: elapsed.Seconds(),
		PerKind:         map[string]OpStats{},
	}
	byKind := map[opKind][]sample{}
	for _, s := range samples {
		byKind[s.kind] = append(byKind[s.kind], s)
	}
	rep.Total = aggregate(samples, elapsed)
	for kind, ss := range byKind {
		rep.PerKind[string(kind)] = aggregate(ss, elapsed)
	}
	return rep
}

func aggregate(ss []sample, elapsed time.Duration) OpStats {
	var st OpStats
	var lats, firsts []float64
	for _, s := range ss {
		st.Count++
		switch {
		case s.err:
			st.Errors++
		case s.shed:
			st.Shed++
		default:
			st.OK++
			st.UpstreamQueries += s.upstreamQ
			lats = append(lats, float64(s.latency)/float64(time.Millisecond))
			if s.firstTup > 0 {
				firsts = append(firsts, float64(s.firstTup)/float64(time.Millisecond))
			}
		}
	}
	if st.Count > 0 {
		st.ShedRate = float64(st.Shed) / float64(st.Count)
	}
	if st.OK > 0 {
		st.UpstreamPerOp = float64(st.UpstreamQueries) / float64(st.OK)
	}
	if elapsed > 0 {
		st.OpsPerSec = float64(st.Count) / elapsed.Seconds()
	}
	st.P50Ms, st.P95Ms, st.P99Ms = percentile(lats, 50), percentile(lats, 95), percentile(lats, 99)
	st.FirstTupleP50Ms = percentile(firsts, 50)
	return st
}

func percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	idx := int(p / 100 * float64(len(v)-1))
	return v[idx]
}

func printReport(rep *Report) {
	fmt.Printf("loadgen: %d clients, mix %s, %.1fs\n", rep.Clients, rep.Mix, rep.DurationSeconds)
	fmt.Printf("%-8s %8s %8s %6s %6s %9s %9s %9s %9s %11s\n",
		"kind", "ops", "ops/s", "shed", "errs", "p50 ms", "p95 ms", "p99 ms", "firstT ms", "upstrQ/op")
	row := func(name string, st OpStats) {
		first := "-"
		if st.FirstTupleP50Ms > 0 {
			first = fmt.Sprintf("%.1f", st.FirstTupleP50Ms)
		}
		fmt.Printf("%-8s %8d %8.1f %6d %6d %9.1f %9.1f %9.1f %9s %11.1f\n",
			name, st.Count, st.OpsPerSec, st.Shed, st.Errors,
			st.P50Ms, st.P95Ms, st.P99Ms, first, st.UpstreamPerOp)
	}
	kinds := make([]string, 0, len(rep.PerKind))
	for k := range rep.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		row(k, rep.PerKind[k])
	}
	row("total", rep.Total)
}
