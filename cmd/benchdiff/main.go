// Command benchdiff compares Go benchmark results against a committed
// baseline and fails on aggregate regression — the CI gate that stops future
// changes from silently giving back benchmarked wins.
//
// It reads benchmark results in any of three formats (auto-detected):
//
//   - a distilled baseline file written by -write ({"benchmarks": {...}})
//   - the `go test -json` event stream (one JSON object per line)
//   - raw `go test -bench` text output
//
// Benchmark names are compared with the trailing -N GOMAXPROCS suffix
// stripped, so a baseline recorded on an 8-core machine matches a CI runner
// with a different core count. When a name appears several times (-count >
// 1), its ns/op values are averaged.
//
// Usage:
//
//	benchdiff -current BENCH.json -write bench/baseline/foo.json   # refresh
//	benchdiff -baseline bench/baseline/foo.json -current BENCH.json [-threshold 1.25]
//
// Compare mode exits non-zero when any of these trips:
//
//   - the geometric mean of the per-benchmark ns/op ratios
//     (current/baseline) exceeds -threshold — a broad regression;
//   - any single benchmark's ratio exceeds -each — a targeted regression
//     that the geomean would dilute (e.g. one slowed benchmark among many
//     static reference entries). -each is looser than -threshold because
//     individual short benchmarks are noisier than the aggregate;
//   - a baseline benchmark is missing from the current run — deleting a
//     slow benchmark must be an explicit baseline refresh, never a silent
//     pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// distilled is the committed-baseline file format.
type distilled struct {
	Metric     string             `json:"metric"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// testEvent is the subset of the `go test -json` event schema benchdiff
// needs: benchmark result lines arrive as "output" events carrying the full
// benchmark name in Test (the Output text itself may hold only the timing
// columns — test2json often splits the name and the result into separate
// events).
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline file (distilled JSON)")
	current := flag.String("current", "", "current results (go test -json stream, raw bench text, or distilled JSON)")
	threshold := flag.Float64("threshold", 1.25, "fail when the geomean ns/op ratio current/baseline exceeds this")
	each := flag.Float64("each", 2.5, "fail when any single benchmark's ratio exceeds this (0 disables)")
	write := flag.String("write", "", "distill -current into this baseline file and exit")
	flag.Parse()

	if *current == "" {
		fatalf("benchdiff: -current is required")
	}
	cur, err := parseFile(*current)
	if err != nil {
		fatalf("benchdiff: %v", err)
	}
	if len(cur) == 0 {
		fatalf("benchdiff: no benchmark results found in %s", *current)
	}

	if *write != "" {
		if err := writeBaseline(*write, cur); err != nil {
			fatalf("benchdiff: %v", err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(cur), *write)
		return
	}

	if *baseline == "" {
		fatalf("benchdiff: need -baseline (compare) or -write (refresh)")
	}
	base, err := parseFile(*baseline)
	if err != nil {
		fatalf("benchdiff: %v", err)
	}
	if len(base) == 0 {
		fatalf("benchdiff: no benchmark results found in %s", *baseline)
	}

	var missing []string
	type row struct {
		name      string
		base, cur float64
		ratio     float64
	}
	var rows []row
	logSum := 0.0
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		r := c / b
		rows = append(rows, row{name, b, c, r})
		logSum += math.Log(r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	var worst []string
	for _, r := range rows {
		marker := " "
		if r.ratio > *threshold {
			marker = "!"
		}
		if *each > 0 && r.ratio > *each {
			marker = "!"
			worst = append(worst, fmt.Sprintf("%s (%.2fx)", r.name, r.ratio))
		}
		fmt.Printf("%s %-70s %12.1f -> %12.1f ns/op  (%.2fx)\n", marker, r.name, r.base, r.cur, r.ratio)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, name := range missing {
			fmt.Printf("! %-70s missing from current run\n", name)
		}
		fatalf("benchdiff: %d baseline benchmark(s) missing from the current run; refresh the baseline if this is intentional", len(missing))
	}
	if len(rows) == 0 {
		fatalf("benchdiff: no overlapping benchmarks between baseline and current")
	}
	geomean := math.Exp(logSum / float64(len(rows)))
	fmt.Printf("geomean ratio over %d benchmarks: %.3fx (threshold %.2fx)\n", len(rows), geomean, *threshold)
	if geomean > *threshold {
		fatalf("benchdiff: FAIL — geomean regression %.3fx exceeds %.2fx", geomean, *threshold)
	}
	if len(worst) > 0 {
		fatalf("benchdiff: FAIL — %d benchmark(s) individually regressed past %.2fx: %s",
			len(worst), *each, strings.Join(worst, ", "))
	}
	fmt.Println("benchdiff: OK")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// parseFile reads benchmark ns/op values from any supported format, keyed by
// benchmark name with the -N core-count suffix stripped. Repeated names are
// averaged.
func parseFile(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Distilled baseline: one JSON object holding the benchmark map.
	var d distilled
	if err := json.Unmarshal(data, &d); err == nil && d.Benchmarks != nil {
		return d.Benchmarks, nil
	}
	sums := make(map[string]float64)
	counts := make(map[string]int)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// `go test -json` stream: unwrap output events to their payload.
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Output == "" {
				continue
			}
			out := strings.TrimSuffix(ev.Output, "\n")
			if ev.Test != "" {
				// The event names the benchmark; the output line holds
				// the timing columns (possibly prefixed by the name).
				if ns, ok := parseNsPerOp(strings.Fields(out)); ok {
					name := stripCPUSuffix(ev.Test)
					sums[name] += ns
					counts[name]++
				}
				continue
			}
			line = out
		}
		if name, ns, ok := parseBenchLine(line); ok {
			sums[name] += ns
			counts[name]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out, nil
}

// parseBenchLine extracts (name, ns/op) from one benchmark result line:
//
//	BenchmarkFoo/sub-8   123   4567 ns/op   0.5 extraMetric
func parseBenchLine(line string) (string, float64, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", 0, false
	}
	if ns, ok := parseNsPerOp(f[1:]); ok {
		return stripCPUSuffix(f[0]), ns, true
	}
	return "", 0, false
}

// parseNsPerOp finds the value preceding a "ns/op" unit among the fields of
// a benchmark timing line.
func parseNsPerOp(f []string) (float64, bool) {
	for i := 1; i < len(f); i++ {
		if f[i] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(f[i-1], 64)
		if err != nil {
			return 0, false
		}
		return ns, true
	}
	return 0, false
}

// stripCPUSuffix removes the trailing -N GOMAXPROCS suffix go test appends,
// so results compare across machines with different core counts.
func stripCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func writeBaseline(path string, benchmarks map[string]float64) error {
	out, err := json.MarshalIndent(distilled{Metric: "ns/op", Benchmarks: benchmarks}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
