// Command rerankbench regenerates the paper's evaluation figures
// (Figures 6–17 of "Query Reranking As A Service", VLDB 2016) over the
// synthetic DOT / Blue Nile / Yahoo! Autos datasets and prints each figure
// as an aligned text table of average query costs.
//
// Usage:
//
//	rerankbench -fig fig6            # one figure at reduced default scale
//	rerankbench -all                 # every figure
//	rerankbench -all -paper          # full §6.1 scale (slow)
//	rerankbench -fig fig13 -sizes 2000,4000 -samples 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		figID   = flag.String("fig", "", "figure to regenerate (fig6..fig17)")
		all     = flag.Bool("all", false, "regenerate every figure")
		paper   = flag.Bool("paper", false, "use the paper's full scale (slow)")
		seed    = flag.Int64("seed", 0, "override RNG seed")
		sizes   = flag.String("sizes", "", "comma-separated database sizes for impact-of-n figures")
		samples = flag.Int("samples", 0, "random samples per database size")
		topH    = flag.Int("toph", 0, "top-h horizon for the cumulative-cost figures")
		csvDir  = flag.String("csv", "", "also write each figure as <dir>/<fig>.csv")
	)
	flag.Parse()
	outCSV = *csvDir

	cfg := experiments.Default()
	if *paper {
		cfg = experiments.Paper()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *topH > 0 {
		cfg.TopH = *topH
	}
	if *sizes != "" {
		cfg.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "rerankbench: bad -sizes entry %q: %v\n", s, err)
				os.Exit(2)
			}
			cfg.Sizes = append(cfg.Sizes, v)
		}
		if cfg.DOTN < 2*cfg.Sizes[len(cfg.Sizes)-1] {
			cfg.DOTN = 2 * cfg.Sizes[len(cfg.Sizes)-1]
		}
	}

	switch {
	case *all:
		ids := []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
			"fig12", "fig13", "fig14", "fig15", "fig16", "fig17"}
		for _, id := range ids {
			if err := runOne(id, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "rerankbench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	case *figID != "":
		if err := runOne(*figID, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rerankbench: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// outCSV, when non-empty, is the directory figures are also exported to.
var outCSV string

func runOne(id string, cfg experiments.Config) error {
	runner, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("unknown figure %q (want fig6..fig17)", id)
	}
	start := time.Now()
	fig, err := runner(cfg)
	if err != nil {
		return err
	}
	fig.Render(os.Stdout)
	fmt.Printf("(%s regenerated in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	if outCSV != "" {
		if err := os.MkdirAll(outCSV, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outCSV, id+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fig.WriteCSV(f); err != nil {
			return err
		}
	}
	return nil
}
