// Command hiddendb serves a synthetic dataset as a client-server database
// with a restricted top-k search interface — the role Blue Nile, Yahoo!
// Autos, or the offline DOT interface play in the paper. It speaks the
// /v1/schema + /v1/search protocol that internal/service.RemoteDB consumes.
//
// Usage:
//
//	hiddendb -dataset bluenile -n 20000 -k 30 -addr :8081
//	hiddendb -dataset dot -n 50000 -k 10 -budget 5000   # enforce a rate limit
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/dataset"
	"repro/internal/hidden"
	"repro/internal/service"
)

func main() {
	var (
		name   = flag.String("dataset", "dot", "dataset: dot, bluenile, yahooautos")
		n      = flag.Int("n", 20000, "number of tuples to generate")
		k      = flag.Int("k", 0, "system-k (0 = dataset default)")
		seed   = flag.Int64("seed", 160205100, "generator seed")
		addr   = flag.String("addr", ":8081", "listen address")
		budget = flag.Int64("budget", 0, "query budget before rate limiting (0 = unlimited)")
	)
	flag.Parse()

	var ds *dataset.Dataset
	switch *name {
	case "dot":
		ds = dataset.DOT(*seed, *n)
	case "bluenile":
		ds = dataset.BlueNile(*seed, *n)
	case "yahooautos":
		ds = dataset.YahooAutos(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "hiddendb: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	kk := ds.DefaultSystemK
	if *k > 0 {
		kk = *k
	}
	db, err := hidden.NewDB(ds.Schema, ds.Tuples, hidden.Options{
		K: kk, Ranker: ds.DefaultRanker, QueryBudget: *budget,
	})
	if err != nil {
		log.Fatalf("hiddendb: %v", err)
	}
	log.Printf("hiddendb: serving %s (n=%d, k=%d, ranking=%s) on %s",
		ds.Name, db.Size(), db.K(), db.RankerName(), *addr)
	log.Fatal(http.ListenAndServe(*addr, service.HiddenDBHandler(db)))
}
