// Command datagen writes the synthetic datasets to CSV for inspection or
// use by external tools.
//
// Usage:
//
//	datagen -dataset bluenile -n 10000 -o diamonds.csv
//	datagen -dataset dot -n 457013 -o -        # full paper-scale, stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/types"
)

func main() {
	var (
		name = flag.String("dataset", "dot", "dataset: dot, bluenile, yahooautos")
		n    = flag.Int("n", 10000, "number of tuples")
		seed = flag.Int64("seed", 160205100, "generator seed")
		out  = flag.String("o", "-", "output file (- = stdout)")
	)
	flag.Parse()

	var ds *dataset.Dataset
	switch *name {
	case "dot":
		ds = dataset.DOT(*seed, *n)
	case "bluenile":
		ds = dataset.BlueNile(*seed, *n)
	case "yahooautos":
		ds = dataset.YahooAutos(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	schema := ds.Schema
	header := append([]string{"id"}, schema.Names()...)
	fmt.Fprintln(bw, strings.Join(header, ","))
	for _, t := range ds.Tuples {
		row := make([]string, 0, schema.Len()+1)
		row = append(row, strconv.Itoa(t.ID))
		for i := 0; i < schema.Len(); i++ {
			a := schema.Attr(i)
			if a.Kind == types.Ordinal {
				row = append(row, strconv.FormatFloat(t.Ord[i], 'g', -1, 64))
			} else {
				row = append(row, t.Cat[a.Name])
			}
		}
		fmt.Fprintln(bw, strings.Join(row, ","))
	}
}
