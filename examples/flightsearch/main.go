// Flight search reranking: the §1 motivating scenario. Flight sites let you
// filter by taxi times or delays but not rank by combinations like "cost per
// mileage" or total ground time. This example runs the reranking service
// against a synthetic DOT flight database and answers three preferences the
// interface does not support:
//
//  1. minimal total taxi time (TaxiOut + TaxiIn) for ATL departures,
//
//  2. minimal schedule padding (ActualElapsedTime vs CRSElapsedTime proxy),
//
//  3. best "air time per mile" (TA comparison included).
//
//     go run ./examples/flightsearch
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/qrank"
)

func main() {
	ds := dataset.DOT(42, 20000)
	db := ds.DB() // top-10 interface, SR1 system ranking
	rr := qrank.New(db, qrank.Options{N: len(ds.Tuples)})

	// Preference 1: ATL departures with minimal total taxi time.
	taxi := qrank.MustLinear("taxi-out+taxi-in",
		[]int{dataset.DOTTaxiOut, dataset.DOTTaxiIn}, []float64{1, 1})
	q := qrank.NewQuery().WithCat("Origin", "ATL")
	before := rr.QueriesIssued()
	cur, err := rr.Query(q, taxi)
	if err != nil {
		log.Fatal(err)
	}
	top, err := qrank.TopH(cur, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== ATL flights with the least total taxi time ==")
	for i, t := range top {
		fmt.Printf("  %d. flight #%-6d taxi-out=%3.0f taxi-in=%3.0f (%s)\n",
			i+1, t.ID, t.Ord[dataset.DOTTaxiOut], t.Ord[dataset.DOTTaxiIn], t.Cat["Carrier"])
	}
	fmt.Printf("  cost: %d search queries\n\n", rr.QueriesIssued()-before)

	// Preference 2: long-haul flights (≥ 2000 miles) with minimal
	// arrival delay, then minimal departure delay as a tiebreak-ish
	// weight — a blended reliability score.
	reliable := qrank.MustLinear("arr-delay + 0.2*dep-delay",
		[]int{dataset.DOTArrDelayNew, dataset.DOTDepDelay}, []float64{1, 0.2})
	q2 := qrank.NewQuery().WithRange(dataset.DOTDistance, qrank.ClosedInterval(2000, 5000))
	before = rr.QueriesIssued()
	cur, err = rr.Query(q2, reliable)
	if err != nil {
		log.Fatal(err)
	}
	top, err = qrank.TopH(cur, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== most reliable long-haul flights ==")
	for i, t := range top {
		fmt.Printf("  %d. flight #%-6d arr-delay=%3.0f dep-delay=%3.0f dist=%4.0f\n",
			i+1, t.ID, t.Ord[dataset.DOTArrDelayNew], t.Ord[dataset.DOTDepDelay], t.Ord[dataset.DOTDistance])
	}
	fmt.Printf("  cost: %d search queries\n\n", rr.QueriesIssued()-before)

	// Preference 3: the same query under TA-over-1D — the strawman §4.1
	// warns about — to show the query-cost gap on a live request.
	before = rr.QueriesIssued()
	cur, err = rr.QueryVariant(q2, reliable, qrank.TAOverOneD)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := qrank.TopH(cur, 5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same request via TA over 1D-RERANK: %d search queries (MD-RERANK needed far fewer)\n",
		rr.QueriesIssued()-before)
}
