// Quickstart: rerank a tiny in-memory "web database" by a ranking function
// the database itself does not support.
//
// The database ranks laptops by an opaque "popularity" score and returns at
// most 5 results per search. We want them by price + weight-penalty — a
// preference the site never offers — and we want the exact answer while
// issuing as few searches as possible.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/qrank"
)

func main() {
	schema := qrank.MustSchema([]qrank.Attribute{
		{Name: "Price", Kind: qrank.Ordinal, Domain: qrank.Domain{Min: 200, Max: 4000}},
		{Name: "WeightKg", Kind: qrank.Ordinal, Domain: qrank.Domain{Min: 0.8, Max: 4.5}},
		{Name: "ScreenIn", Kind: qrank.Ordinal, Domain: qrank.Domain{Min: 11, Max: 17}},
		{Name: "Brand", Kind: qrank.Categorical, Values: []string{"apfel", "lemono", "dill"}},
	})

	// 400 synthetic laptops with an opaque popularity ranking.
	rng := rand.New(rand.NewSource(1))
	brands := []string{"apfel", "lemono", "dill"}
	tuples := make([]qrank.Tuple, 400)
	for i := range tuples {
		tuples[i] = qrank.Tuple{
			ID: i,
			Ord: []float64{
				200 + rng.Float64()*3800,
				0.8 + rng.Float64()*3.7,
				11 + rng.Float64()*6,
				0,
			},
			Cat: map[string]string{"Brand": brands[rng.Intn(3)]},
		}
	}
	popularity := func(t qrank.Tuple) float64 {
		// Unknown to the reranker: heavier, pricier laptops are
		// "popular" — the worst case for our preference.
		return -(t.Ord[0] + 500*t.Ord[1])
	}
	db, err := qrank.NewMemoryDatabase(schema, tuples, 5, popularity)
	if err != nil {
		log.Fatal(err)
	}

	// The reranking service: knows nothing but the top-5 interface.
	rr := qrank.New(db, qrank.Options{N: len(tuples)})

	// User preference: cheap and light, 13"+ screens, dill brand only.
	q := qrank.NewQuery().
		WithRange(2, qrank.ClosedInterval(13, 17)).
		WithCat("Brand", "dill")
	rank := qrank.MustLinear("price+700*weight", []int{0, 1}, []float64{1, 700})

	cur, err := rr.Query(q, rank)
	if err != nil {
		log.Fatal(err)
	}
	top, err := qrank.TopH(cur, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-5 dill laptops ≥13\" by price + 700·weight:")
	for i, t := range top {
		fmt.Printf("  %d. #%-3d price=$%-7.0f weight=%.2fkg screen=%.1f\" score=%.0f\n",
			i+1, t.ID, t.Ord[0], t.Ord[1], t.Ord[2], qrank.Score(rank, t))
	}
	fmt.Printf("search queries issued upstream: %d (database holds %d tuples)\n",
		rr.QueriesIssued(), len(tuples))
}
