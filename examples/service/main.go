// Full service pipeline in one process: a hiddendb HTTP server (playing the
// role of a real web database), a rerankd HTTP service dialed to it over the
// network, and a client issuing reranked queries — the complete third-party
// deployment of the paper's title. The last act federates a second web
// database into the same service as its own knowledge namespace via the
// registry API.
//
//	go run ./examples/service
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/dataset"
	"repro/internal/service"
)

func main() {
	// 1. The "web database": Blue Nile generator behind a top-30 HTTP
	//    search interface with its proprietary ranking.
	ds := dataset.BlueNile(99, 15000)
	upstream := httptest.NewServer(service.HiddenDBHandler(ds.DB()))
	defer upstream.Close()
	fmt.Printf("hiddendb serving %d diamonds at %s (k=30)\n", len(ds.Tuples), upstream.URL)

	// 2. The third-party reranking service, which only knows the URL.
	remote, err := service.DialRemote(upstream.URL, upstream.Client())
	if err != nil {
		log.Fatal(err)
	}
	api := httptest.NewServer(service.NewServer(remote, len(ds.Tuples)).Handler())
	defer api.Close()
	fmt.Printf("rerankd proxying it at %s\n\n", api.URL)

	// 3. A user with a preference the site does not support.
	client := service.NewClientWith(api.URL, service.WithHTTPClient(api.Client()))
	resp, err := client.Rerank(service.RerankRequest{
		Filters: map[string]string{"Shape": "Princess"},
		Ranking: service.RankingSpec{
			Kind:    "linear",
			Attrs:   []string{"Depth", "Table"},
			Weights: []float64{1, 1},
		},
		H: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 princess stones by depth+table:")
	for i, t := range resp.Tuples {
		fmt.Printf("  %d. #%-6d depth=%.3f table=%.3f $%.0f (score %.4f)\n",
			i+1, t.ID, t.Ord["Depth"], t.Ord["Table"], t.Ord["Price"], t.Score)
	}
	fmt.Printf("upstream searches spent on this request: %d\n\n", resp.QueriesIssued)

	// 4. Repeat it — the service's history makes the second request
	//    dramatically cheaper.
	resp2, err := client.Rerank(service.RerankRequest{
		Filters: map[string]string{"Shape": "Princess"},
		Ranking: service.RankingSpec{
			Kind:    "linear",
			Attrs:   []string{"Depth", "Table"},
			Weights: []float64{1, 1},
		},
		H: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same request again: %d upstream searches (history at work)\n", resp2.QueriesIssued)

	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service stats: %d requests, %d lifetime upstream queries, %d cached tuples\n\n",
		st.Requests, st.EngineQueries, st.HistoryTuples)

	// 5. Federation: a second web database joins the SAME service as its own
	//    namespace — isolated ledger, history and caches — via the registry
	//    API, no restart involved.
	autos := dataset.YahooAutos(7, 10000)
	upstream2 := httptest.NewServer(service.HiddenDBHandler(autos.DB()))
	defer upstream2.Close()
	info, err := client.RegisterUpstream(service.UpstreamConfig{
		Name: "autos", URL: upstream2.URL, N: len(autos.Tuples),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered namespace %q (k=%d, %d attributes)\n", info.Name, info.Schema.K, len(info.Schema.Attrs))

	autosClient := service.NewClientWith(api.URL,
		service.WithHTTPClient(api.Client()), service.WithUpstream("autos"))
	resp3, err := autosClient.Rerank(service.RerankRequest{
		Ranking: service.RankingSpec{Kind: "single", Attrs: []string{"Mileage"}},
		H:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 cars by lowest mileage, from the federated namespace:")
	for i, t := range resp3.Tuples {
		fmt.Printf("  %d. #%-6d mileage=%.0f $%.0f\n", i+1, t.ID, t.Ord["Mileage"], t.Ord["Price"])
	}
	ups, err := client.Upstreams()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("namespaces now served: %d (default %q)\n", len(ups.Upstreams), ups.Default)
}
