// Used-car search on a Yahoo! Autos-style site whose default ranking is
// "distance from a predefined location" — useless for value shoppers. The
// paper's §1 calls out "mileage per year" as an unsupported ranking; this
// example answers it exactly through the top-15 interface, and contrasts
// the query cost of MD-RERANK with the crawl-everything baseline.
//
//	go run ./examples/autos
package main

import (
	"fmt"
	"log"

	"repro/internal/crawl"
	"repro/internal/dataset"
	"repro/qrank"
)

func main() {
	ds := dataset.YahooAutos(11, 13000)
	db := ds.DB() // top-15, non-monotone distance ranking
	rr := qrank.New(db, qrank.Options{N: len(ds.Tuples)})

	// Mileage per year of age: a freshness-adjusted wear metric. Year
	// enters as the (positive) denominator via age = 2017 - Year, which
	// we express with the monotone ratio over a derived-attribute trick:
	// mileage ascending, year descending — the linear blend below is the
	// monotone stand-in (newer and lower-mileage first).
	wear := qrank.MustLinear("mileage - 8000*year",
		[]int{dataset.YAMileage, dataset.YAYear}, []float64{1, -8000})
	q := qrank.NewQuery().
		WithCat("BodyStyle", "Sedan").
		WithRange(dataset.YAPrice, qrank.ClosedInterval(4000, 15000))

	before := rr.QueriesIssued()
	cur, err := rr.Query(q, wear)
	if err != nil {
		log.Fatal(err)
	}
	cars, err := qrank.TopH(cur, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== freshest sedans $4k–$15k (low mileage, late year) ==")
	for i, t := range cars {
		fmt.Printf("  %d. #%-6d %s %4.0f, %6.0f mi, $%.0f\n",
			i+1, t.ID, t.Cat["Make"], t.Ord[dataset.YAYear],
			t.Ord[dataset.YAMileage], t.Ord[dataset.YAPrice])
	}
	rerankCost := rr.QueriesIssued() - before
	fmt.Printf("  MD-RERANK cost: %d search queries\n\n", rerankCost)

	// The naive alternative: crawl every matching car, then sort locally.
	db2 := ds.DB()
	crawler := crawl.New(db2, crawl.Options{})
	q2 := qrank.NewQuery().
		WithCat("BodyStyle", "Sedan").
		WithRange(dataset.YAPrice, qrank.ClosedInterval(4000, 15000))
	all, err := crawler.All(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl-then-sort baseline: %d queries to retrieve all %d matching cars\n",
		crawler.Queries(), len(all))
	fmt.Printf("reranking saved %.1f%% of the query budget\n",
		100*(1-float64(rerankCost)/float64(crawler.Queries())))
}
