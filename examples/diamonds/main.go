// Diamond shopping on a Blue Nile-style catalog: the paper's §1 example of
// an unsupported ranking is "summation of depth and table percent" — a cut
// quality heuristic the site cannot sort by. This example also ranks by
// price-per-carat (which the real site supports, so we can sanity-check) and
// demonstrates incremental Get-Next paging: each additional page costs only
// the incremental queries.
//
//	go run ./examples/diamonds
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/qrank"
)

func main() {
	ds := dataset.BlueNile(7, 30000)
	db := ds.DB() // top-30 interface, ranked by descending price-per-carat
	rr := qrank.New(db, qrank.Options{N: len(ds.Tuples)})

	// Unsupported ranking: depth% + table% (lower is better-cut, say),
	// restricted to round ideal-cut stones between 0.9 and 2 carats.
	cut := qrank.MustLinear("depth+table",
		[]int{dataset.BNDepth, dataset.BNTable}, []float64{1, 1})
	q := qrank.NewQuery().
		WithCat("Shape", "Round").
		WithCat("Cut", "Ideal").
		WithRange(dataset.BNCarat, qrank.ClosedInterval(0.9, 2.0))

	cur, err := rr.Query(q, cut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== best-cut round ideal 0.9–2ct stones (depth+table) ==")
	for page := 1; page <= 3; page++ {
		before := rr.QueriesIssued()
		stones, err := qrank.TopH(cur, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" page %d (cost %d queries):\n", page, rr.QueriesIssued()-before)
		for _, t := range stones {
			fmt.Printf("   #%-6d %.2fct depth=%.3f table=%.3f $%.0f\n",
				t.ID, t.Ord[dataset.BNCarat], t.Ord[dataset.BNDepth],
				t.Ord[dataset.BNTable], t.Ord[dataset.BNPrice])
		}
	}

	// Supported ranking, unsupported *direction* of use: cheapest price
	// per carat across the whole catalog (the site only sorts pages by
	// its own default).
	ppc := qrank.NewRatio("price-per-carat", dataset.BNPrice, dataset.BNCarat)
	before := rr.QueriesIssued()
	cur, err = rr.Query(qrank.NewQuery(), ppc)
	if err != nil {
		log.Fatal(err)
	}
	best, err := qrank.TopH(cur, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== best value stones (price per carat) — %d queries ==\n",
		rr.QueriesIssued()-before)
	for i, t := range best {
		fmt.Printf("  %d. #%-6d %.2fct $%.0f → $%.0f/ct\n",
			i+1, t.ID, t.Ord[dataset.BNCarat], t.Ord[dataset.BNPrice],
			t.Ord[dataset.BNPrice]/t.Ord[dataset.BNCarat])
	}
}
