package qrank_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/qrank"
)

func buildDB(t testing.TB, n, k int) (qrank.Database, []qrank.Tuple, *qrank.Schema) {
	t.Helper()
	schema := qrank.MustSchema([]qrank.Attribute{
		{Name: "p", Kind: qrank.Ordinal, Domain: qrank.Domain{Min: 0, Max: 1000}},
		{Name: "m", Kind: qrank.Ordinal, Domain: qrank.Domain{Min: 0, Max: 1000}},
		{Name: "b", Kind: qrank.Categorical, Values: []string{"u", "v"}},
	})
	rng := rand.New(rand.NewSource(9))
	tuples := make([]qrank.Tuple, n)
	for i := range tuples {
		tuples[i] = qrank.Tuple{
			ID:  i,
			Ord: []float64{rng.Float64() * 1000, rng.Float64() * 1000, 0},
			Cat: map[string]string{"b": []string{"u", "v"}[rng.Intn(2)]},
		}
	}
	db, err := qrank.NewMemoryDatabase(schema, tuples, k, func(t qrank.Tuple) float64 {
		return -(t.Ord[0] + t.Ord[1]) // hostile: worst first
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, tuples, schema
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db, tuples, _ := buildDB(t, 500, 7)
	rr := qrank.New(db, qrank.Options{N: 500})
	rank := qrank.MustLinear("p+2m", []int{0, 1}, []float64{1, 2})
	q := qrank.NewQuery().WithCat("b", "u")
	cur, err := rr.Query(q, rank)
	if err != nil {
		t.Fatal(err)
	}
	got, err := qrank.TopH(cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle.
	var want []float64
	for _, tp := range tuples {
		if tp.Cat["b"] == "u" {
			want = append(want, tp.Ord[0]+2*tp.Ord[1])
		}
	}
	sort.Float64s(want)
	if len(got) != 10 {
		t.Fatalf("got %d tuples", len(got))
	}
	for i, tp := range got {
		if s := qrank.Score(rank, tp); s != want[i] {
			t.Fatalf("rank %d: score %g, want %g", i, s, want[i])
		}
	}
	if rr.QueriesIssued() <= 0 || rr.HistorySize() <= 0 {
		t.Error("accounting broken")
	}
}

func TestPublicVariants(t *testing.T) {
	db, _, _ := buildDB(t, 300, 5)
	rr := qrank.New(db, qrank.Options{N: 300})
	rank := qrank.MustLinear("lin", []int{0, 1}, []float64{1, 1})
	for _, v := range []qrank.Variant{qrank.Baseline, qrank.Binary, qrank.Rerank, qrank.TAOverOneD} {
		cur, err := rr.QueryVariant(qrank.NewQuery(), rank, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		top, err := qrank.TopH(cur, 3)
		if err != nil || len(top) != 3 {
			t.Fatalf("%v: %v len=%d", v, err, len(top))
		}
	}
	// Single-attribute ranking routes to the 1D machinery, TA must be
	// rejected there.
	single := qrank.NewSingle("s", 0, qrank.Desc)
	if _, err := rr.QueryVariant(qrank.NewQuery(), single, qrank.TAOverOneD); err == nil {
		t.Error("TA accepted for 1D ranking")
	}
	cur, err := rr.Query(qrank.NewQuery(), single)
	if err != nil {
		t.Fatal(err)
	}
	top, err := qrank.TopH(cur, 1)
	if err != nil || len(top) != 1 {
		t.Fatal("single-attr query failed")
	}
}

// TestConcurrentSessions exercises the public concurrency contract: many
// goroutines, each with its own session, against one shared Reranker. Every
// answer must be exact and the session ledgers must partition the total.
func TestConcurrentSessions(t *testing.T) {
	db, tuples, _ := buildDB(t, 400, 5)
	rr := qrank.New(db, qrank.Options{N: 400})
	rank := qrank.MustLinear("p+m", []int{0, 1}, []float64{1, 1})

	oracle := func(filter string, h int) []float64 {
		var want []float64
		for _, tp := range tuples {
			if filter == "" || tp.Cat["b"] == filter {
				want = append(want, tp.Ord[0]+tp.Ord[1])
			}
		}
		sort.Float64s(want)
		return want[:h]
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ledgers int64
	errs := make(chan error, 16)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			filter := []string{"", "u", "v"}[g%3]
			q := qrank.NewQuery()
			if filter != "" {
				q = q.WithCat("b", filter)
			}
			sess := rr.NewSession()
			cur, err := sess.NewCursor(q, rank, qrank.Rerank)
			if err != nil {
				errs <- err
				return
			}
			got, err := qrank.TopH(cur, 5)
			if err != nil {
				errs <- err
				return
			}
			want := oracle(filter, 5)
			for i, tp := range got {
				if s := qrank.Score(rank, tp); s != want[i] {
					t.Errorf("goroutine %d rank %d: score %g, want %g", g, i, s, want[i])
				}
			}
			mu.Lock()
			ledgers += sess.Queries()
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ledgers != rr.QueriesIssued() {
		t.Errorf("session ledgers sum to %d, reranker counted %d", ledgers, rr.QueriesIssued())
	}
}
