// Package qrank is the public API of the query-reranking library — a Go
// implementation of "Query Reranking As A Service" (Asudeh, Zhang, Das;
// VLDB 2016).
//
// Given any client-server database that exposes only a restricted top-k
// search interface with a proprietary ranking function, qrank answers user
// queries under ANY monotone user-specified ranking function, exactly, while
// minimizing the number of search queries issued upstream.
//
// # Quickstart
//
//	db := myDataset.DB() // anything implementing qrank.Database
//	rr := qrank.New(db, qrank.Options{N: 100_000})
//	rank := qrank.MustLinear("cheap+low-miles", []int{priceIdx, milesIdx}, []float64{1, 0.1})
//	cur, err := rr.Query(qrank.NewQuery(), rank)
//	top10, err := qrank.TopH(cur, 10)
//
// # Concurrency
//
// A Reranker is safe for concurrent use. Internally it is split into a
// shared Knowledge layer — the cross-query answer history, the on-the-fly
// dense-region indexes, and the upstream-query counter, all internally
// synchronized — and per-request Sessions that hold traversal state and a
// per-request cost ledger. Create cursors from any goroutine; each
// individual Cursor must be driven by one goroutine at a time. A probe
// coalescing layer deduplicates identical in-flight upstream queries and
// replays recent complete answers, so concurrent users with overlapping
// queries do not multiply upstream cost (deduplicated probes are counted
// once). Options.DisableCoalescing opts out for upstreams whose corpus
// changes mid-run.
//
// The heavy lifting lives in internal/core (the paper's 1D-RERANK and
// MD-RERANK algorithms with on-the-fly dense-region indexing); this package
// re-exports the stable surface.
package qrank

import (
	"io"

	"repro/internal/core"
	"repro/internal/hidden"
	"repro/internal/history"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/types"
)

// StorageStats describes the resident footprint of the columnar tuple store
// backing the answer history (see docs/storage.md): arena row and block
// counts, interned-dictionary size, and an approximate byte total.
type StorageStats = history.StorageStats

// Re-exported data-model types.
type (
	// Tuple is one database row.
	Tuple = types.Tuple
	// Schema describes a database's attributes.
	Schema = types.Schema
	// Attribute is one schema column.
	Attribute = types.Attribute
	// Domain is an ordinal attribute's value domain.
	Domain = types.Domain
	// Interval is a one-dimensional range with open/closed endpoints.
	Interval = types.Interval
	// Query is a conjunctive selection (ranges + categorical equality).
	Query = query.Query
	// Database is the restricted top-k search interface the reranker
	// drives. Implement it to plug in any upstream source.
	Database = hidden.Database
	// Result is one top-k search answer.
	Result = hidden.Result
	// Ranker is a monotone user-specified ranking function.
	Ranker = ranking.Ranker
	// Direction is an attribute preference order (Asc or Desc).
	Direction = ranking.Direction
	// Cursor incrementally yields ranked answers (Get-Next, §2.2).
	Cursor = core.Cursor
	// Options tune the reranking engine.
	Options = core.Options
	// Variant selects the algorithm family (Rerank is the paper's full
	// algorithm and the default).
	Variant = core.Variant
	// Session scopes the cursors of one logical request and tracks the
	// upstream queries charged to it. Create one per request via
	// Reranker.NewSession when a per-request cost ledger is needed;
	// sessions from many goroutines may run concurrently.
	Session = core.Session
)

// Attribute kinds.
const (
	Ordinal     = types.Ordinal
	Categorical = types.Categorical
)

// Preference directions.
const (
	Asc  = ranking.Asc
	Desc = ranking.Desc
)

// Algorithm variants.
const (
	Baseline   = core.Baseline
	Binary     = core.Binary
	Rerank     = core.Rerank
	TAOverOneD = core.TAOverOneD
)

// NewSchema builds a schema from attributes.
func NewSchema(attrs []Attribute) (*Schema, error) { return types.NewSchema(attrs) }

// MustSchema is NewSchema panicking on error.
func MustSchema(attrs []Attribute) *Schema { return types.MustSchema(attrs) }

// NewQuery returns an empty (match-all) user query; refine it with
// Query.WithRange and Query.WithCat.
func NewQuery() Query { return query.New() }

// OpenInterval returns the open interval (lo, hi).
func OpenInterval(lo, hi float64) Interval { return types.OpenInterval(lo, hi) }

// ClosedInterval returns the closed interval [lo, hi].
func ClosedInterval(lo, hi float64) Interval { return types.ClosedInterval(lo, hi) }

// NewLinear builds a weighted linear ranking function Σ w_i·A_i (smaller
// score ranks first; negative weights prefer larger values).
func NewLinear(name string, attrs []int, weights []float64) (Ranker, error) {
	return ranking.NewLinear(name, attrs, weights)
}

// MustLinear is NewLinear panicking on error.
func MustLinear(name string, attrs []int, weights []float64) Ranker {
	return ranking.MustLinear(name, attrs, weights)
}

// NewSingle ranks by one attribute in the given direction.
func NewSingle(name string, attr int, dir Direction) Ranker {
	return ranking.NewSingle(name, attr, dir)
}

// NewRatio ranks by attrs[num]/attrs[den] ascending (e.g. price-per-carat).
// The denominator's domain must be strictly positive.
func NewRatio(name string, num, den int) Ranker { return ranking.NewRatio(name, num, den) }

// Reranker is a long-lived reranking service instance bound to one upstream
// database. Its answer history and on-the-fly dense indexes persist across
// queries, so costs amortize the more it is used. It is safe for concurrent
// use: cursors may be created and driven from many goroutines at once (one
// goroutine per cursor).
type Reranker struct {
	engine *core.Engine
}

// New builds a Reranker over db. Options.N should estimate the upstream
// database size (it calibrates the dense-region thresholds); everything else
// can be left zero.
func New(db Database, opts Options) *Reranker {
	return &Reranker{engine: core.NewEngine(db, opts)}
}

// Query starts incremental Get-Next processing of q under ranker r using
// the paper's full algorithms (1D-RERANK / MD-RERANK).
func (r *Reranker) Query(q Query, rank Ranker) (Cursor, error) {
	return r.engine.NewCursor(q, rank, core.Rerank)
}

// QueryVariant is Query with an explicit algorithm choice (for comparisons
// and experiments).
func (r *Reranker) QueryVariant(q Query, rank Ranker, v Variant) (Cursor, error) {
	return r.engine.NewCursor(q, rank, v)
}

// NewSession starts a session: a per-request scope whose Queries ledger
// reports exactly the upstream cost charged to the cursors created from it,
// even while other sessions run concurrently.
func (r *Reranker) NewSession() *Session { return r.engine.NewSession() }

// QueriesIssued reports the total number of upstream search queries this
// instance has spent — the paper's sole cost measure. Probes deduplicated
// by the coalescing layer count once.
func (r *Reranker) QueriesIssued() int64 { return r.engine.Queries() }

// SaveSnapshot serializes the accumulated answer history and dense indexes
// so a future Reranker over the same upstream can start warm.
func (r *Reranker) SaveSnapshot(w io.Writer) error { return r.engine.SaveSnapshot(w) }

// LoadSnapshot restores knowledge saved by SaveSnapshot. The upstream
// schema must match.
func (r *Reranker) LoadSnapshot(rd io.Reader) error { return r.engine.LoadSnapshot(rd) }

// HistorySize reports how many distinct upstream tuples have been observed.
func (r *Reranker) HistorySize() int { return r.engine.History().Size() }

// StorageStats reports the columnar store's resident footprint: sealed
// blocks, dictionary entries, row count, and approximate bytes.
func (r *Reranker) StorageStats() StorageStats { return r.engine.StorageStats() }

// TopH drains up to h tuples from a cursor.
func TopH(c Cursor, h int) ([]Tuple, error) { return core.TopH(c, h) }

// Score evaluates a ranking function on a tuple.
func Score(r Ranker, t Tuple) float64 { return ranking.ScoreTuple(r, t) }

// NewMemoryDatabase builds an in-memory hidden database — handy for tests,
// demos, and serving local data through the same interface. The tuples are
// ranked by sys (nil = insertion order) and each search returns at most k.
func NewMemoryDatabase(schema *Schema, tuples []Tuple, k int, sys func(Tuple) float64) (Database, error) {
	var ranker hidden.SystemRanker
	if sys != nil {
		ranker = hidden.FuncRanker{F: sys, Label: "custom"}
	}
	return hidden.NewDB(schema, tuples, hidden.Options{K: k, Ranker: ranker})
}
